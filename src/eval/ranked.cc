#include "eval/ranked.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace prefdb {

ScoreFn BindRankedUtility(const PrefPtr& p, const Schema& schema) {
  if (const auto* rank = dynamic_cast<const RankPreference*>(p.get())) {
    return rank->BindUtility(schema);
  }
  auto keys = p->BindSortKeys(schema);
  if (!keys || keys->size() != 1) {
    throw std::invalid_argument(
        "ranked retrieval requires a single-utility preference (rank(F) or "
        "one derivable sort key), got " +
        p->ToString());
  }
  return (*keys)[0];
}

RankedRows TopKRows(const Relation& r, const ScoreFn& utility, size_t k,
                    const std::vector<size_t>* rows) {
  const size_t n = rows ? rows->size() : r.size();
  std::vector<double> scores;
  scores.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scores.push_back(utility(r.at(rows ? (*rows)[i] : i)));
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  if (k > 0 && k < order.size()) order.resize(k);
  RankedRows out;
  out.rows.reserve(order.size());
  out.utilities.reserve(order.size());
  for (size_t i : order) {
    out.rows.push_back(i);
    out.utilities.push_back(scores[i]);
  }
  return out;
}

namespace {

RankedResult Materialize(const Relation& r, const RankedRows& ranked) {
  RankedResult out;
  out.relation = Relation(r.schema());
  for (size_t i : ranked.rows) out.relation.Add(r.at(i));
  out.utilities = ranked.utilities;
  return out;
}

}  // namespace

RankedResult TopK(const Relation& r, const RankPreference& rank, size_t k) {
  return Materialize(r, TopKRows(r, rank.BindUtility(r.schema()), k));
}

RankedResult TopK(const Relation& r, const PrefPtr& p, size_t k) {
  return Materialize(r, TopKRows(r, BindRankedUtility(p, r.schema()), k));
}

}  // namespace prefdb
