#include "eval/ranked.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace prefdb {

namespace {

RankedResult TopKByUtility(const Relation& r, const ScoreFn& utility,
                           size_t k) {
  std::vector<double> scores;
  scores.reserve(r.size());
  for (const Tuple& t : r.tuples()) scores.push_back(utility(t));
  std::vector<size_t> order(r.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&scores](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  if (k > 0 && k < order.size()) order.resize(k);
  RankedResult out;
  out.relation = Relation(r.schema());
  for (size_t i : order) {
    out.relation.Add(r.at(i));
    out.utilities.push_back(scores[i]);
  }
  return out;
}

}  // namespace

RankedResult TopK(const Relation& r, const RankPreference& rank, size_t k) {
  return TopKByUtility(r, rank.BindUtility(r.schema()), k);
}

RankedResult TopK(const Relation& r, const PrefPtr& p, size_t k) {
  auto keys = p->BindSortKeys(r.schema());
  if (!keys || keys->size() != 1) {
    throw std::invalid_argument(
        "TopK requires a single-utility preference, got " + p->ToString());
  }
  return TopKByUtility(r, (*keys)[0], k);
}

}  // namespace prefdb
