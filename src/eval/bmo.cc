#include "eval/bmo.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/numeric_preferences.h"
#include "eval/bmo_internal.h"
#include "eval/decomposition.h"
#include "exec/parallel_bmo.h"
#include "exec/score_table.h"
#include "exec/simd/dominance.h"
#include "exec/thread_pool.h"

namespace prefdb {

const char* BmoAlgorithmName(BmoAlgorithm algo) {
  switch (algo) {
    case BmoAlgorithm::kAuto: return "auto";
    case BmoAlgorithm::kNaive: return "naive";
    case BmoAlgorithm::kBlockNestedLoop: return "bnl";
    case BmoAlgorithm::kSortFilter: return "sfs";
    case BmoAlgorithm::kDivideConquer: return "dc";
    case BmoAlgorithm::kDecomposition: return "decomposition";
    case BmoAlgorithm::kParallel: return "parallel";
  }
  return "?";
}

const char* SimdModeName(SimdMode mode) {
  switch (mode) {
    case SimdMode::kAuto: return "auto";
    case SimdMode::kOff: return "off";
    case SimdMode::kScalar: return "scalar";
    case SimdMode::kAvx2: return "avx2";
  }
  return "?";
}

ProjectionIndex BuildProjectionIndex(const Relation& r, const Preference& p,
                                     const std::vector<size_t>* rows) {
  ProjectionIndex out;
  std::vector<size_t> cols = r.ResolveColumns(p.attributes());
  out.proj_schema = r.schema().Project(p.attributes());
  // Columnar dedup: per-column equality coding over the store's flat
  // buffers instead of per-row Tuple::Project + hashing. Codes come out
  // in first-occurrence order, matching the old hash-map assignment.
  GroupCoding coding = ComputeGroupCoding(r, cols, rows);
  out.row_to_value.assign(coding.codes.begin(), coding.codes.end());
  out.values.reserve(coding.num_groups);
  for (uint32_t rep : coding.group_rows) {
    const size_t row = rows ? (*rows)[rep] : rep;
    std::vector<Value> vals;
    vals.reserve(cols.size());
    for (size_t c : cols) vals.push_back(r.ValueAt(row, c));
    out.values.emplace_back(std::move(vals));
  }
  return out;
}

namespace {

// Range-based implementations: partition-parallel callers evaluate
// contiguous slices of the distinct-value array without copying tuples.

std::vector<bool> MaximaNaiveRange(const Tuple* values, size_t m,
                                   const LessFn& less) {
  std::vector<bool> maximal(m, true);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i != j && less(values[i], values[j])) {
        maximal[i] = false;
        break;
      }
    }
  }
  return maximal;
}

std::vector<bool> MaximaBnlRange(const Tuple* values, size_t m,
                                 const LessFn& less) {
  std::vector<bool> maximal(m, false);
  std::vector<size_t> window;
  for (size_t i = 0; i < m; ++i) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      size_t cand = window[w];
      if (!dominated && less(values[i], values[cand])) {
        dominated = true;
        // The rest of the window cannot be dominated by i (asymmetry +
        // transitivity would contradict their mutual incomparability), so
        // keep everything from here on.
        for (; w < window.size(); ++w) window[keep++] = window[w];
        break;
      }
      if (less(values[cand], values[i])) continue;  // evict cand
      window[keep++] = cand;
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }
  for (size_t idx : window) maximal[idx] = true;
  return maximal;
}

std::vector<bool> MaximaSortFilterRange(const Tuple* values, size_t m,
                                        const LessFn& less,
                                        const std::vector<ScoreFn>& keys) {
  std::vector<std::vector<double>> key_vals(m);
  for (size_t i = 0; i < m; ++i) {
    key_vals[i].reserve(keys.size());
    for (const auto& k : keys) {
      double v = k(values[i]);
      if (!std::isfinite(v)) {
        // Non-finite keys void the topological guarantee: NaN makes the
        // sort comparator inconsistent (UB), and +/-inf absorbs Pareto
        // key *sums* — the sum ties although a component is strictly
        // better, so a later key can sort a dominator behind its
        // dominatee (e.g. LOWEST over non-numeric values scores -inf).
        // The one-sided window pass is only sound under strict key
        // compatibility; degrade this block to the BNL window.
        return MaximaBnlRange(values, m, less);
      }
      key_vals[i].push_back(v);
    }
  }
  std::vector<size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  // Descending lexicographic: with all-finite keys, dominators come
  // strictly before dominatees (BindSortKeys' compatibility contract).
  std::sort(order.begin(), order.end(), [&key_vals](size_t a, size_t b) {
    return key_vals[b] < key_vals[a];
  });
  std::vector<bool> maximal(m, false);
  std::vector<size_t> window;
  for (size_t i : order) {
    bool dominated = false;
    for (size_t w : window) {
      if (less(values[i], values[w])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) window.push_back(i);
  }
  for (size_t idx : window) maximal[idx] = true;
  return maximal;
}

}  // namespace

std::vector<bool> MaximaNaive(const std::vector<Tuple>& values,
                              const LessFn& less) {
  return MaximaNaiveRange(values.data(), values.size(), less);
}

std::vector<bool> MaximaBnl(const std::vector<Tuple>& values,
                            const LessFn& less) {
  return MaximaBnlRange(values.data(), values.size(), less);
}

std::vector<bool> MaximaSortFilter(const std::vector<Tuple>& values,
                                   const LessFn& less,
                                   const std::vector<ScoreFn>& keys) {
  return MaximaSortFilterRange(values.data(), values.size(), less, keys);
}

namespace {

// Flat row-major matrix view for the KLP75 recursion: row i is the `d`
// doubles at data + i * stride (zero-copy over score-table storage).
// When `kernel` is set, the quadratic base-case blocks run through the
// batch dominance kernels over `prog` (flat Pareto, score equality only
// — exactly coordinatewise dominance) with a correspondingly larger
// cutoff.
struct ScoreMatrix {
  const double* data;
  size_t d;
  size_t stride;
  const simd::KernelOps* kernel = nullptr;
  const simd::DominanceProgram* prog = nullptr;
  const double* row(size_t i) const { return data + i * stride; }
};

// Quadratic maxima over a small block; maximal[i] is only ever set, so
// callers can accumulate across disjoint blocks. Self-comparison is
// harmless (nothing dominates itself), so the batch path scans each row
// against the whole gathered block.
void QuadraticBlock(const ScoreMatrix& scores, const std::vector<size_t>& idx,
                    std::vector<bool>& maximal);

// KLP75 base case: 2-d maxima by a plane sweep.
void Maxima2D(const ScoreMatrix& scores, std::vector<size_t>& idx,
              std::vector<bool>& maximal) {
  std::sort(idx.begin(), idx.end(), [&scores](size_t a, size_t b) {
    if (scores.row(a)[0] != scores.row(b)[0]) {
      return scores.row(a)[0] > scores.row(b)[0];
    }
    return scores.row(a)[1] > scores.row(b)[1];
  });
  bool has_best = false;
  double best0 = 0.0;
  double best1 = -std::numeric_limits<double>::infinity();
  for (size_t i : idx) {
    if (!has_best || scores.row(i)[1] > best1) {
      maximal[i] = true;
      has_best = true;
      best0 = scores.row(i)[0];
      best1 = scores.row(i)[1];
    } else if (scores.row(i)[1] == best1 && scores.row(i)[0] == best0) {
      // Exact duplicate of the current sweep maximum: equal rows never
      // dominate each other (no strict coordinate), so it is maximal too.
      // Reachable only from the zero-copy compile path, which skips
      // duplicate elimination.
      maximal[i] = true;
    }
  }
}

bool DominatesFrom(const ScoreMatrix& scores, size_t a, size_t b,
                   size_t from) {
  // a dominates b in dims [from, d): a >= b everywhere, a > b somewhere.
  const double* ra = scores.row(a);
  const double* rb = scores.row(b);
  bool strict = false;
  for (size_t k = from; k < scores.d; ++k) {
    if (ra[k] < rb[k]) return false;
    if (ra[k] > rb[k]) strict = true;
  }
  return strict;
}

void QuadraticBlock(const ScoreMatrix& scores, const std::vector<size_t>& idx,
                    std::vector<bool>& maximal) {
  if (scores.kernel != nullptr && idx.size() >= 2 * simd::kLanes) {
    simd::RowBlock block(scores.d);
    for (size_t i : idx) block.Append(scores.row(i), nullptr, i);
    for (size_t i : idx) {
      if (!scores.kernel->dominated(*scores.prog, scores.row(i), nullptr,
                                    block)) {
        maximal[i] = true;
      }
    }
    return;
  }
  for (size_t i : idx) {
    bool dominated = false;
    for (size_t j : idx) {
      if (i != j && DominatesFrom(scores, j, i, 0)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal[i] = true;
  }
}

void MaximaDcRec(const ScoreMatrix& scores, std::vector<size_t> idx,
                 std::vector<bool>& maximal) {
  const size_t d = scores.d;
  // The batch kernels make a larger quadratic base case cheaper than
  // further recursion levels.
  const size_t cutoff = scores.kernel != nullptr ? 32 : 8;
  if (idx.size() <= cutoff) {
    QuadraticBlock(scores, idx, maximal);
    return;
  }
  if (d == 2) {
    Maxima2D(scores, idx, maximal);
    return;
  }
  // Split by the median of dim 0.
  std::vector<size_t> sorted = idx;
  std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                   sorted.end(), [&scores](size_t a, size_t b) {
                     return scores.row(a)[0] > scores.row(b)[0];
                   });
  double median = scores.row(sorted[sorted.size() / 2])[0];
  std::vector<size_t> upper, lower;
  for (size_t i : idx) {
    (scores.row(i)[0] > median ? upper : lower).push_back(i);
  }
  if (upper.empty() || lower.empty()) {
    // Degenerate split (many equal dim-0 values): dominance within the
    // block is decided by the remaining dims plus exact dim-0 ties;
    // fall back to the quadratic check for this block.
    QuadraticBlock(scores, idx, maximal);
    return;
  }
  std::vector<bool> upper_max(maximal.size(), false);
  std::vector<bool> lower_max(maximal.size(), false);
  MaximaDcRec(scores, upper, upper_max);
  MaximaDcRec(scores, lower, lower_max);
  // "Marriage" step: a lower maximum survives unless some upper maximum
  // weakly dominates it in dims 1..d-1 (dim 0 is already strictly larger).
  std::vector<size_t> upper_maxima;
  for (size_t i : upper) {
    if (upper_max[i]) {
      maximal[i] = true;
      upper_maxima.push_back(i);
    }
  }
  for (size_t i : lower) {
    if (!lower_max[i]) continue;
    bool dominated = false;
    for (size_t j : upper_maxima) {
      bool geq = true;
      for (size_t k = 1; k < d; ++k) {
        if (scores.row(j)[k] < scores.row(i)[k]) {
          geq = false;
          break;
        }
      }
      if (geq) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal[i] = true;
  }
}

}  // namespace

std::vector<bool> MaximaDivideConquerFlat(const double* scores, size_t n,
                                          size_t d, size_t stride,
                                          const simd::KernelOps* kernel) {
  std::vector<bool> maximal(n, false);
  if (n == 0) return maximal;
  // Coordinatewise dominance == flat Pareto over score-equality columns.
  simd::DominanceProgram prog;
  prog.mode = simd::DominanceProgram::Mode::kFlatPareto;
  prog.cols = d;
  prog.use_ids.assign(d, 0);
  ScoreMatrix m{scores, d, stride, kernel, &prog};
  if (d < 2) {
    // 1-d: maxima are the rows attaining the maximum score.
    double best = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) best = std::max(best, m.row(i)[0]);
    for (size_t i = 0; i < n; ++i) maximal[i] = m.row(i)[0] == best;
    return maximal;
  }
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  MaximaDcRec(m, std::move(idx), maximal);
  return maximal;
}

std::vector<bool> MaximaDivideConquer(
    const std::vector<std::vector<double>>& scores) {
  if (scores.empty()) return {};
  const size_t d = scores[0].size();
  if (d == 0) return std::vector<bool>(scores.size(), false);
  std::vector<double> flat(scores.size() * d);
  for (size_t i = 0; i < scores.size(); ++i) {
    std::copy(scores[i].begin(), scores[i].end(), flat.begin() + i * d);
  }
  return MaximaDivideConquerFlat(flat.data(), scores.size(), d, d);
}

bool CanUseDivideConquer(const PrefPtr& p, std::vector<PrefPtr>* leaves) {
  switch (p->kind()) {
    case PreferenceKind::kPareto: {
      auto kids = p->children();
      return CanUseDivideConquer(kids[0], leaves) &&
             CanUseDivideConquer(kids[1], leaves);
    }
    case PreferenceKind::kLowest:
    case PreferenceKind::kHighest: {
      // Leaf attributes must be pairwise distinct for score dominance to
      // coincide with Def. 8.
      for (const auto& seen : *leaves) {
        if (seen->attributes()[0] == p->attributes()[0]) return false;
      }
      leaves->push_back(p);
      return true;
    }
    default:
      return false;
  }
}

namespace internal {

BmoAlgorithm ResolveBlockAlgorithm(const PrefPtr& p,
                                   const Schema& proj_schema) {
  std::vector<PrefPtr> leaves;
  if (CanUseDivideConquer(p, &leaves)) {
    return BmoAlgorithm::kDivideConquer;
  }
  if (p->BindSortKeys(proj_schema)) {
    return BmoAlgorithm::kSortFilter;
  }
  return BmoAlgorithm::kBlockNestedLoop;
}

std::vector<bool> ComputeMaximaBlock(const Tuple* values, size_t count,
                                     const PrefPtr& p,
                                     const Schema& proj_schema,
                                     const PhysicalPlan& plan) {
  BmoAlgorithm algo = plan.algorithm;
  if (plan.vectorize) {
    if (auto table = ScoreTable::Compile(p, proj_schema, values, count)) {
      // kAuto resolves with the table's data-aware rules (D&C when score
      // dominance is exact, SFS whenever keys compile — a superset of the
      // closure path's eligibility); ineligible requests degrade to BNL
      // inside MaximaRange.
      return table->MaximaRange(algo, 0, count, plan);
    }
  }
  if (algo == BmoAlgorithm::kAuto) {
    algo = ResolveBlockAlgorithm(p, proj_schema);
  }
  switch (algo) {
    case BmoAlgorithm::kNaive:
      return MaximaNaiveRange(values, count, p->Bind(proj_schema));
    case BmoAlgorithm::kBlockNestedLoop:
      return MaximaBnlRange(values, count, p->Bind(proj_schema));
    case BmoAlgorithm::kSortFilter: {
      auto keys = p->BindSortKeys(proj_schema);
      if (!keys) return MaximaBnlRange(values, count, p->Bind(proj_schema));
      return MaximaSortFilterRange(values, count, p->Bind(proj_schema),
                                   *keys);
    }
    case BmoAlgorithm::kDivideConquer: {
      std::vector<PrefPtr> leaves;
      if (!CanUseDivideConquer(p, &leaves)) {
        return MaximaBnlRange(values, count, p->Bind(proj_schema));
      }
      std::vector<ScoreFn> fns;
      for (const auto& leaf : leaves) {
        fns.push_back((*leaf->BindSortKeys(proj_schema))[0]);
      }
      std::vector<std::vector<double>> scores(count);
      for (size_t i = 0; i < count; ++i) {
        scores[i].reserve(fns.size());
        for (const auto& f : fns) {
          double v = f(values[i]);
          if (std::isnan(v)) {
            // NaN scores break the recursion's sort comparator (UB) and
            // compare false against everything, so score dominance no
            // longer coincides with Def. 8 — degrade to the BNL window,
            // same contract as MaximaSortFilterRange's key guard.
            return MaximaBnlRange(values, count, p->Bind(proj_schema));
          }
          scores[i].push_back(v);
        }
      }
      return MaximaDivideConquer(scores);
    }
    case BmoAlgorithm::kDecomposition:
    case BmoAlgorithm::kParallel:
    case BmoAlgorithm::kAuto:
      break;  // relation-level strategies, dispatched by BmoIndices
  }
  return MaximaBnlRange(values, count, p->Bind(proj_schema));
}

std::vector<bool> ExecuteBlockPlan(const Tuple* values, size_t count,
                                   const PrefPtr& p,
                                   const Schema& proj_schema,
                                   const ScoreTable* table,
                                   const PhysicalPlan& plan) {
  if (plan.algorithm == BmoAlgorithm::kParallel) {
    return MaximaParallel(values, count, p, proj_schema, plan, table);
  }
  if (table != nullptr) {
    return table->MaximaRange(plan.algorithm, 0, count, plan);
  }
  PhysicalPlan closure_plan = plan;
  closure_plan.vectorize = false;  // compilation was already attempted
  return ComputeMaximaBlock(values, count, p, proj_schema, closure_plan);
}

std::vector<bool> ExecuteBlockPlan(const std::vector<Tuple>& values,
                                   const PrefPtr& p,
                                   const Schema& proj_schema,
                                   const ScoreTable* table,
                                   const PhysicalPlan& plan) {
  return ExecuteBlockPlan(values.data(), values.size(), p, proj_schema, table,
                          plan);
}

}  // namespace internal

namespace {

/// Plans one distinct-value block: measured statistics from the compiled
/// table when available (exact column distinct counts + the sampled
/// window probe), a cheap structural estimate otherwise. Relation-level
/// decomposition is not considered here — the optimizer routes it before
/// the block is materialized.
PhysicalPlan PlanBlock(const ProjectionIndex& proj, const PrefPtr& p,
                       const ScoreTable* table, size_t input_rows,
                       const BmoOptions& options) {
  PlanScope scope;
  scope.allow_decomposition = false;
  if (options.algorithm != BmoAlgorithm::kAuto) {
    return PlanPhysical(TermStats{}, options, scope);
  }
  TermStats stats =
      table != nullptr
          ? MeasureTermStats(*table, p, input_rows)
          : EstimateClosureBlockStats(proj.proj_schema, proj.values.size(),
                                      input_rows, p);
  return PlanPhysical(stats, options, scope);
}

}  // namespace

std::vector<size_t> BmoIndices(const Relation& r, const PrefPtr& p,
                               const BmoOptions& options) {
  if (r.empty()) return {};
  if (options.algorithm == BmoAlgorithm::kDecomposition) {
    return BmoDecompositionIndices(r, p);
  }
  // Zero-copy fast path: compile straight off the column buffers — no
  // projection index, no dedup, identity row mapping. Gated on a sampled
  // distinctness probe: with heavy duplication the deduplicating gather
  // below shrinks the kernel input enough to win instead.
  if (options.vectorize && ScoreTable::CompilableColumnar(p, r) &&
      LikelyMostlyDistinct(r, r.ResolveColumns(p->attributes()))) {
    if (auto table = ScoreTable::CompileColumnar(p, r)) {
      Schema proj_schema = r.schema().Project(p->attributes());
      PhysicalPlan plan =
          PlanBlock(ProjectionIndex{}, p, &*table, r.size(), options);
      std::vector<bool> maximal = internal::ExecuteBlockPlan(
          nullptr, r.size(), p, proj_schema, &*table, plan);
      std::vector<size_t> rows;
      for (size_t i = 0; i < r.size(); ++i) {
        if (maximal[i]) rows.push_back(i);
      }
      return rows;
    }
  }
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  std::optional<ScoreTable> table;
  if (options.vectorize && !proj.values.empty()) {
    table = ScoreTable::Compile(p, proj.proj_schema, proj.values.data(),
                                proj.values.size());
  }
  PhysicalPlan plan =
      PlanBlock(proj, p, table ? &*table : nullptr, r.size(), options);
  std::vector<bool> maximal = internal::ExecuteBlockPlan(
      proj.values, p, proj.proj_schema, table ? &*table : nullptr, plan);
  std::vector<size_t> rows;
  for (size_t i = 0; i < r.size(); ++i) {
    if (maximal[proj.row_to_value[i]]) rows.push_back(i);
  }
  return rows;
}

Relation Bmo(const Relation& r, const PrefPtr& p, const BmoOptions& options) {
  return r.SelectRows(BmoIndices(r, p, options));
}

namespace {

// σ[P] row indices for one group, projecting the group's rows in place
// (no SelectRows deep copy). Appends qualifying *global* row indices.
void BmoGroupMaxima(const Relation& r, const std::vector<size_t>& rows,
                    const PrefPtr& p, const PhysicalPlan& plan,
                    std::vector<size_t>* out) {
  ProjectionIndex proj = BuildProjectionIndex(r, *p, &rows);
  std::vector<bool> maximal =
      internal::ComputeMaximaBlock(proj.values, p, proj.proj_schema, plan);
  for (size_t i = 0; i < rows.size(); ++i) {
    if (maximal[proj.row_to_value[i]]) out->push_back(rows[i]);
  }
}

}  // namespace

std::vector<size_t> BmoGroupByIndices(
    const Relation& r, const PrefPtr& p,
    const std::vector<std::string>& group_attrs, const BmoOptions& options) {
  if (r.empty()) return {};
  std::vector<size_t> group_cols = r.ResolveColumns(group_attrs);
  auto groups = r.GroupIndicesBy(group_cols);
  std::vector<size_t> out;

  ThreadPool& pool = ThreadPool::Shared();
  const size_t threads = ThreadPool::ResolveThreads(options.num_threads);
  // The decomposition evaluator is relation-level (it cascades through
  // BmoDecompositionIndices), so it keeps the materializing path; every
  // block algorithm runs straight off the groups' row lists. Per-group
  // evaluation never nests kParallel: groups already saturate the pool.
  if (options.algorithm != BmoAlgorithm::kDecomposition && groups.size() > 1 &&
      threads > 1 && !pool.OnWorkerThread()) {
    std::vector<const std::vector<size_t>*> group_rows;
    group_rows.reserve(groups.size());
    for (const auto& [key, rows] : groups) group_rows.push_back(&rows);
    // Per-group pass-through plan: the block algorithm resolves
    // data-aware inside each group (groups already saturate the pool, so
    // kParallel never nests).
    PhysicalPlan group_plan = PhysicalPlan::FromOptions(options);
    if (group_plan.algorithm == BmoAlgorithm::kParallel) {
      group_plan.algorithm = BmoAlgorithm::kAuto;
    }
    std::vector<std::vector<size_t>> results(group_rows.size());
    pool.ParallelForChunks(
        group_rows.size(), threads, 1,
        [&](size_t, size_t begin, size_t end) {
          for (size_t g = begin; g < end; ++g) {
            BmoGroupMaxima(r, *group_rows[g], p, group_plan, &results[g]);
          }
        });
    for (const auto& rows : results) {
      out.insert(out.end(), rows.begin(), rows.end());
    }
  } else {
    for (const auto& [key, rows] : groups) {
      Relation group = r.SelectRows(rows);
      for (size_t local : BmoIndices(group, p, options)) {
        out.push_back(rows[local]);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Relation BmoGroupBy(const Relation& r, const PrefPtr& p,
                    const std::vector<std::string>& group_attrs,
                    const BmoOptions& options) {
  return r.SelectRows(BmoGroupByIndices(r, p, group_attrs, options));
}

size_t ResultSize(const Relation& r, const PrefPtr& p,
                  const BmoOptions& options) {
  Relation result = Bmo(r, p, options);
  return result.DistinctProjections(p->attributes()).size();
}

bool IsPerfectMatch(const Tuple& t, const Relation& r, const PrefPtr& p,
                    const std::vector<Tuple>& universe) {
  std::vector<size_t> cols = r.ResolveColumns(p->attributes());
  Schema proj_schema = r.schema().Project(p->attributes());
  LessFn less = p->Bind(proj_schema);
  Tuple proj = t.Project(cols);
  // Perfect match: t[A] in max(P) over the whole domain (Def. 14b), and t
  // must of course be in R.
  bool in_r = false;
  for (const Tuple& row : r.tuples()) {
    if (row == t) {
      in_r = true;
      break;
    }
  }
  if (!in_r) return false;
  for (const Tuple& v : universe) {
    if (less(proj, v)) return false;
  }
  return true;
}

}  // namespace prefdb
