#include "eval/quality.h"

#include <stdexcept>

namespace prefdb {

size_t IntrinsicLevel(const Preference& p, const Value& v) {
  // dynamic_cast, not kind-tag downcasts: subclasses outside core/ may
  // share a kind (Preference SQL's condition-layered ELSE chains reuse
  // kLayered) and level themselves through the BasePreference virtual.
  if (const auto* e = dynamic_cast<const ExplicitPreference*>(&p)) {
    return e->LevelOf(v);
  }
  if (const auto* base = dynamic_cast<const BasePreference*>(&p)) {
    if (auto level = base->IntrinsicLevelOf(v)) return *level;
  }
  throw std::invalid_argument("LEVEL is undefined for " + p.ToString());
}

double QualityDistance(const Preference& p, const Value& v) {
  switch (p.kind()) {
    case PreferenceKind::kAround:
      return dynamic_cast<const AroundPreference&>(p).Distance(v);
    case PreferenceKind::kBetween:
      return dynamic_cast<const BetweenPreference&>(p).Distance(v);
    default:
      throw std::invalid_argument("DISTANCE is undefined for " + p.ToString());
  }
}

PrefPtr FindBasePreference(const PrefPtr& term, const std::string& attribute) {
  auto kids = term->children();
  if (kids.empty()) {
    if (term->attributes().size() == 1 && term->attributes()[0] == attribute) {
      return term;
    }
    return nullptr;
  }
  for (const auto& child : kids) {
    if (PrefPtr found = FindBasePreference(child, attribute)) return found;
  }
  return nullptr;
}

}  // namespace prefdb
