#include "eval/quality.h"

#include <stdexcept>
#include <unordered_map>

namespace prefdb {

namespace {

// Levels of an EXPLICIT preference: longest chain above a value within the
// graph; values outside the graph sit one level below the deepest value.
size_t ExplicitLevel(const ExplicitPreference& p, const Value& v) {
  const ValueSet& range = p.graph_values();
  std::vector<Value> nodes(range.begin(), range.end());
  std::unordered_map<Value, size_t, ValueHash> level;
  size_t deepest = 0;
  // Longest-path DP by repeated relaxation (graphs are tiny).
  bool changed = true;
  for (const Value& n : nodes) level[n] = 1;
  size_t guard = 0;
  while (changed && guard++ <= nodes.size() + 1) {
    changed = false;
    for (const Value& worse : nodes) {
      for (const Value& better : nodes) {
        if (p.LessValue(worse, better) && level[worse] < level[better] + 1) {
          level[worse] = level[better] + 1;
          changed = true;
        }
      }
    }
  }
  for (const Value& n : nodes) deepest = std::max(deepest, level[n]);
  auto it = level.find(v);
  if (it != level.end()) return it->second;
  return deepest + 1;
}

}  // namespace

size_t IntrinsicLevel(const Preference& p, const Value& v) {
  switch (p.kind()) {
    case PreferenceKind::kPos: {
      const auto& pos = static_cast<const PosPreference&>(p);
      return pos.pos_set().count(v) ? 1 : 2;
    }
    case PreferenceKind::kNeg: {
      const auto& neg = static_cast<const NegPreference&>(p);
      return neg.neg_set().count(v) ? 2 : 1;
    }
    case PreferenceKind::kPosNeg: {
      const auto& pn = static_cast<const PosNegPreference&>(p);
      if (pn.pos_set().count(v)) return 1;
      if (pn.neg_set().count(v)) return 3;
      return 2;
    }
    case PreferenceKind::kPosPos: {
      const auto& pp = static_cast<const PosPosPreference&>(p);
      if (pp.pos1_set().count(v)) return 1;
      if (pp.pos2_set().count(v)) return 2;
      return 3;
    }
    case PreferenceKind::kLayered:
      return static_cast<const LayeredPreference&>(p).LevelOf(v);
    case PreferenceKind::kExplicit:
      return ExplicitLevel(static_cast<const ExplicitPreference&>(p), v);
    default:
      throw std::invalid_argument("LEVEL is undefined for " + p.ToString());
  }
}

double QualityDistance(const Preference& p, const Value& v) {
  switch (p.kind()) {
    case PreferenceKind::kAround:
      return static_cast<const AroundPreference&>(p).Distance(v);
    case PreferenceKind::kBetween:
      return static_cast<const BetweenPreference&>(p).Distance(v);
    default:
      throw std::invalid_argument("DISTANCE is undefined for " + p.ToString());
  }
}

PrefPtr FindBasePreference(const PrefPtr& term, const std::string& attribute) {
  auto kids = term->children();
  if (kids.empty()) {
    if (term->attributes().size() == 1 && term->attributes()[0] == attribute) {
      return term;
    }
    return nullptr;
  }
  for (const auto& child : kids) {
    if (PrefPtr found = FindBasePreference(child, attribute)) return found;
  }
  return nullptr;
}

}  // namespace prefdb
