// 'Better-than' graphs (Kießling Def. 2): the Hasse diagram of a database
// preference (P)_R, with level numbers, maximal/minimal sets and render
// helpers. Used to reproduce the paper's example figures mechanically.

#ifndef PREFDB_EVAL_BETTER_THAN_GRAPH_H_
#define PREFDB_EVAL_BETTER_THAN_GRAPH_H_

#include <string>
#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb {

/// The Hasse diagram of (P)_R over the distinct projections R[A].
class BetterThanGraph {
 public:
  /// Builds the graph by exhaustive better-than tests (the paper's method
  /// in Examples 2-4), followed by a transitive reduction.
  BetterThanGraph(const Relation& r, const PrefPtr& p);

  size_t size() const { return values_.size(); }
  const std::vector<Tuple>& values() const { return values_; }
  const Schema& projection_schema() const { return proj_schema_; }

  /// 1-based level of node i: 1 + length of the longest path from a
  /// maximal value down to it (Def. 2).
  size_t LevelOf(size_t i) const { return level_[i]; }
  size_t max_level() const { return max_level_; }

  /// Immediate Hasse successors of node i (the nodes directly *worse*
  /// than i; i is their predecessor in the paper's drawing).
  const std::vector<size_t>& WorseNeighbors(size_t i) const {
    return reduced_[i];
  }

  /// True iff values_[i] <P values_[j] (j better), via the full dominance
  /// relation (not just Hasse edges).
  bool IsWorse(size_t i, size_t j) const { return dominated_by_[i][j]; }

  /// Node indices of max(P_R) / minimal elements.
  const std::vector<size_t>& maximal() const { return maximal_; }
  const std::vector<size_t>& minimal() const { return minimal_; }

  /// Values at the given 1-based level, deterministically sorted.
  std::vector<Tuple> ValuesAtLevel(size_t level) const;

  /// "Level 1: a b\nLevel 2: c\n" rendering (matches the paper's figures).
  std::string ToText() const;

  /// Graphviz DOT rendering of the Hasse diagram (edges point from better
  /// to worse).
  std::string ToDot(const std::string& name = "better_than") const;

 private:
  Schema proj_schema_;
  std::vector<Tuple> values_;
  std::vector<std::vector<bool>> dominated_by_;   // [worse][better]
  std::vector<std::vector<size_t>> reduced_;      // Hasse: better -> worse
  std::vector<size_t> level_;
  size_t max_level_ = 0;
  std::vector<size_t> maximal_;
  std::vector<size_t> minimal_;
};

}  // namespace prefdb

#endif  // PREFDB_EVAL_BETTER_THAN_GRAPH_H_
