#include "eval/decomposition.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/bmo.h"

namespace prefdb {

namespace {

// Single-pass evaluation of a score-induced base preference: the maxima are
// exactly the rows attaining the maximum score (x <P y iff f(x) < f(y)).
std::vector<size_t> ScoredBaseIndices(const Relation& r,
                                      const ScoredBasePreference& p) {
  auto idx = r.schema().IndexOf(p.attribute());
  std::vector<size_t> out;
  if (!idx) {
    throw std::out_of_range("attribute '" + p.attribute() +
                            "' not found in schema");
  }
  double best = -std::numeric_limits<double>::infinity();
  bool seen = false;
  for (const Tuple& t : r.tuples()) {
    double s = p.ScoreOf(t[*idx]);
    if (!seen || s > best) {
      best = s;
      seen = true;
    }
  }
  for (size_t i = 0; i < r.size(); ++i) {
    if (p.ScoreOf(r.at(i)[*idx]) == best) out.push_back(i);
  }
  return out;
}

std::vector<size_t> FallbackIndices(const Relation& r, const PrefPtr& p) {
  return BmoIndices(r, p, {BmoAlgorithm::kBlockNestedLoop});
}

// σ[P groupby A](R) with recursive decomposition inside each group.
std::vector<size_t> GroupByIndices(const Relation& r, const PrefPtr& p,
                                   const std::vector<std::string>& attrs) {
  std::vector<size_t> group_cols = r.ResolveColumns(attrs);
  auto groups = r.GroupIndicesBy(group_cols);
  std::vector<size_t> out;
  for (const auto& [key, rows] : groups) {
    Relation group = r.SelectRows(rows);
    for (size_t local : BmoDecompositionIndices(group, p)) {
      out.push_back(rows[local]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<size_t> Remap(const std::vector<size_t>& outer,
                          const std::vector<size_t>& inner) {
  std::vector<size_t> out;
  out.reserve(inner.size());
  for (size_t i : inner) out.push_back(outer[i]);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<size_t> NonMaximalIndices(const Relation& r, const PrefPtr& p) {
  std::vector<size_t> max_rows = BmoIndices(r, p, {});
  std::vector<size_t> out;
  out.reserve(r.size() - max_rows.size());
  size_t k = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    if (k < max_rows.size() && max_rows[k] == i) {
      ++k;
    } else {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<size_t> YYIndices(const Relation& r, const PrefPtr& p1,
                              const PrefPtr& p2) {
  if (r.empty()) return {};
  std::vector<std::string> attrs =
      AttributeUnion(p1->attributes(), p2->attributes());
  std::vector<size_t> cols = r.ResolveColumns(attrs);
  Schema proj_schema = r.schema().Project(attrs);
  // Distinct value combinations R[A].
  std::vector<Tuple> values;
  std::vector<size_t> row_to_value(r.size());
  {
    std::unordered_map<Tuple, size_t, TupleHash> ids;
    for (size_t i = 0; i < r.size(); ++i) {
      Tuple proj = r.at(i).Project(cols);
      auto [it, inserted] = ids.emplace(std::move(proj), values.size());
      if (inserted) values.push_back(it->first);
      row_to_value[i] = it->second;
    }
  }
  LessFn l1 = p1->Bind(proj_schema);
  LessFn l2 = p2->Bind(proj_schema);
  const size_t m = values.size();
  std::vector<bool> in_yy(m, false);
  for (size_t i = 0; i < m; ++i) {
    bool nonmax1 = false, nonmax2 = false, common_dominator = false;
    for (size_t j = 0; j < m && !common_dominator; ++j) {
      if (i == j) continue;
      bool b1 = l1(values[i], values[j]);
      bool b2 = l2(values[i], values[j]);
      nonmax1 |= b1;
      nonmax2 |= b2;
      common_dominator = b1 && b2;
    }
    // Def. 17c: non-maximal in both orders, but the 'better-than' sets
    // within R[A] do not intersect.
    in_yy[i] = nonmax1 && nonmax2 && !common_dominator;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < r.size(); ++i) {
    if (in_yy[row_to_value[i]]) out.push_back(i);
  }
  return out;
}

std::vector<size_t> BmoDecompositionIndices(const Relation& r,
                                            const PrefPtr& p) {
  if (r.empty()) return {};
  switch (p->kind()) {
    case PreferenceKind::kPrioritized: {
      auto kids = p->children();
      const PrefPtr& p1 = kids[0];
      const PrefPtr& p2 = kids[1];
      if (SameAttributeSet(p1->attributes(), p2->attributes())) {
        // Prop 4a: P1 & P2 == P1 on shared attributes.
        return BmoDecompositionIndices(r, p1);
      }
      if (!DisjointAttributeSets(p1->attributes(), p2->attributes())) {
        return FallbackIndices(r, p);
      }
      if (p1->IsChain()) {
        // Prop 11: a cascade of preference queries.
        std::vector<size_t> first = BmoDecompositionIndices(r, p1);
        Relation sub = r.SelectRows(first);
        return Remap(first, BmoDecompositionIndices(sub, p2));
      }
      // Prop 10: σ[P1](R) ∩ σ[P2 groupby A1](R).
      std::vector<size_t> left = BmoDecompositionIndices(r, p1);
      std::vector<size_t> right = GroupByIndices(r, p2, p1->attributes());
      return Relation::IndexIntersect(left, right);
    }
    case PreferenceKind::kPareto: {
      auto kids = p->children();
      const PrefPtr& p1 = kids[0];
      const PrefPtr& p2 = kids[1];
      // Prop 12 (via Props 5 + 9): the union of both prioritized views
      // plus the YY compromise set.
      PrefPtr pr12 = Prioritized(p1, p2);
      PrefPtr pr21 = Prioritized(p2, p1);
      std::vector<size_t> t1 = BmoDecompositionIndices(r, pr12);
      std::vector<size_t> t2 = BmoDecompositionIndices(r, pr21);
      std::vector<size_t> yy = YYIndices(r, pr12, pr21);
      return Relation::IndexUnion(Relation::IndexUnion(t1, t2), yy);
    }
    case PreferenceKind::kIntersection: {
      auto kids = p->children();
      // Prop 9.
      std::vector<size_t> t1 = BmoDecompositionIndices(r, kids[0]);
      std::vector<size_t> t2 = BmoDecompositionIndices(r, kids[1]);
      std::vector<size_t> yy = YYIndices(r, kids[0], kids[1]);
      return Relation::IndexUnion(Relation::IndexUnion(t1, t2), yy);
    }
    case PreferenceKind::kDisjointUnion: {
      auto kids = p->children();
      // Prop 8.
      return Relation::IndexIntersect(BmoDecompositionIndices(r, kids[0]),
                                      BmoDecompositionIndices(r, kids[1]));
    }
    case PreferenceKind::kAntiChain: {
      std::vector<size_t> all(r.size());
      for (size_t i = 0; i < r.size(); ++i) all[i] = i;
      return all;
    }
    case PreferenceKind::kAround:
    case PreferenceKind::kBetween:
    case PreferenceKind::kLowest:
    case PreferenceKind::kHighest:
    case PreferenceKind::kScore:
      return ScoredBaseIndices(
          r, dynamic_cast<const ScoredBasePreference&>(*p));
    default:
      return FallbackIndices(r, p);
  }
}

}  // namespace prefdb
