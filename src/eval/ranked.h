// The ranked ("k-best") query model of Kießling §6.2: rank(F) preferences
// usually form chains, so BMO would return a single best object; instead,
// multi-feature and full-text engines return the top k objects by the
// combined utility. This module provides that retrieval mode.
//
// Reachable from Preference SQL via `SELECT TOP k ...` / `SELECT RANKED
// ...` (psql/parser.h), routed here by the engine (engine/engine.h).

#ifndef PREFDB_EVAL_RANKED_H_
#define PREFDB_EVAL_RANKED_H_

#include <vector>

#include "core/complex_preferences.h"
#include "relation/relation.h"

namespace prefdb {

/// Result of a k-best query: rows in descending utility order, with the
/// utilities aligned 1:1.
struct RankedResult {
  Relation relation;
  std::vector<double> utilities;
};

/// Row-index form of RankedResult: positions into the queried row set, in
/// descending utility order (ties broken by input order, deterministic).
struct RankedRows {
  std::vector<size_t> rows;
  std::vector<double> utilities;
};

/// Derives the single combined utility of `p`: RankPreference's F, or the
/// single topologically compatible sort key any numerical base preference
/// (and Pareto combinations thereof) exposes. Throws std::invalid_argument
/// when no single-key utility is derivable (e.g. prioritized chains).
ScoreFn BindRankedUtility(const PrefPtr& p, const Schema& schema);

/// Top k of the `count` rows of R listed in `rows` (all rows when `rows`
/// is null), by `utility`. k = 0 returns everything ranked. The returned
/// indices are positions into `rows` order (global row indices when `rows`
/// is null).
RankedRows TopKRows(const Relation& r, const ScoreFn& utility, size_t k,
                    const std::vector<size_t>* rows = nullptr);

/// Top k rows of R by the rank(F) combined utility (ties broken by input
/// order, deterministic). k = 0 returns everything ranked.
RankedResult TopK(const Relation& r, const RankPreference& rank, size_t k);

/// Top k rows by any preference exposing a single utility (see
/// BindRankedUtility). Throws std::invalid_argument when no single-key
/// utility is derivable.
RankedResult TopK(const Relation& r, const PrefPtr& p, size_t k);

}  // namespace prefdb

#endif  // PREFDB_EVAL_RANKED_H_
