// The ranked ("k-best") query model of Kießling §6.2: rank(F) preferences
// usually form chains, so BMO would return a single best object; instead,
// multi-feature and full-text engines return the top k objects by the
// combined utility. This module provides that retrieval mode.

#ifndef PREFDB_EVAL_RANKED_H_
#define PREFDB_EVAL_RANKED_H_

#include <vector>

#include "core/complex_preferences.h"
#include "relation/relation.h"

namespace prefdb {

/// Result of a k-best query: rows in descending utility order, with the
/// utilities aligned 1:1.
struct RankedResult {
  Relation relation;
  std::vector<double> utilities;
};

/// Top k rows of R by the rank(F) combined utility (ties broken by input
/// order, deterministic). k = 0 returns everything ranked.
RankedResult TopK(const Relation& r, const RankPreference& rank, size_t k);

/// Top k rows by any preference exposing a single sort key (every
/// numerical base preference qualifies by the §3.4 hierarchy). Throws
/// std::invalid_argument when no single-key utility is derivable.
RankedResult TopK(const Relation& r, const PrefPtr& p, size_t k);

}  // namespace prefdb

#endif  // PREFDB_EVAL_RANKED_H_
