// Decomposition-based BMO evaluation (Kießling §5.2-5.4): a divide &
// conquer evaluator that recursively applies
//   Prop 8    σ[P1 + P2](R)  = σ[P1](R) ∩ σ[P2](R)
//   Prop 9    σ[P1 <> P2](R) = σ[P1](R) ∪ σ[P2](R) ∪ YY(P1, P2)_R
//   Prop 10   σ[P1 & P2](R)  = σ[P1](R) ∩ σ[P2 groupby A1](R)   (A1 ∩ A2 = ∅)
//   Prop 11   σ[P1 & P2](R)  = σ[P2](σ[P1](R))                  (P1 a chain)
//   Prop 12   σ[P1 (x) P2](R) = σ[P1&P2](R) ∪ σ[P2&P1](R)
//                                ∪ YY(P1&P2, P2&P1)_R
// down to base preferences, which are evaluated in a single pass.

#ifndef PREFDB_EVAL_DECOMPOSITION_H_
#define PREFDB_EVAL_DECOMPOSITION_H_

#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb {

/// σ[P](R) via the decomposition theorems; returns qualifying row indices,
/// sorted ascending. Constructors without a decomposition rule (duals,
/// subset preferences, rank(F), partially overlapping accumulations) fall
/// back to a generic window algorithm.
std::vector<size_t> BmoDecompositionIndices(const Relation& r,
                                            const PrefPtr& p);

/// YY(P1, P2)_R of Def. 17c: rows whose projection is non-maximal in both
/// (P1)_R and (P2)_R yet has no common dominator within R[A]. The two
/// preferences must share one attribute set A (as in Props 9/12).
std::vector<size_t> YYIndices(const Relation& r, const PrefPtr& p1,
                              const PrefPtr& p2);

/// Nmax((P)_R) of Def. 17a as row indices: rows whose projection is
/// dominated by some other projection in R[A].
std::vector<size_t> NonMaximalIndices(const Relation& r, const PrefPtr& p);

}  // namespace prefdb

#endif  // PREFDB_EVAL_DECOMPOSITION_H_
