// Internals shared by eval/bmo.cc and the exec/ parallel engine: maxima
// computation over a block of distinct projected values, with the same
// per-block algorithm resolution the sequential evaluator uses. Not part
// of the public API surface.

#ifndef PREFDB_EVAL_BMO_INTERNAL_H_
#define PREFDB_EVAL_BMO_INTERNAL_H_

#include <vector>

#include "core/preference.h"
#include "eval/bmo.h"
#include "exec/score_table.h"

namespace prefdb::internal {

/// Resolves kAuto for a block of distinct values the way sequential BMO
/// does: D&C for skyline fragments, SFS when sort keys are derivable, BNL
/// otherwise. Never returns kAuto, kParallel or kDecomposition.
BmoAlgorithm ResolveBlockAlgorithm(const PrefPtr& p, const Schema& proj_schema);

/// Maximal-value flags for the `count` values at `values`, under p bound
/// against proj_schema. Takes a raw range so partition-parallel callers
/// can evaluate contiguous slices without copying tuples. kAuto is
/// resolved via ResolveBlockAlgorithm (or the score table's data-aware
/// resolution when the term compiles and `vectorize` is set). `policy`
/// picks the batch dominance kernel and BNL tile size for the compiled
/// paths. kParallel and kDecomposition are relation-level strategies, not
/// block algorithms; they fall back to BNL here.
std::vector<bool> ComputeMaximaBlock(const Tuple* values, size_t count,
                                     const PrefPtr& p,
                                     const Schema& proj_schema,
                                     BmoAlgorithm algo, bool vectorize = true,
                                     const KernelPolicy& policy = {});

inline std::vector<bool> ComputeMaximaBlock(const std::vector<Tuple>& values,
                                            const PrefPtr& p,
                                            const Schema& proj_schema,
                                            BmoAlgorithm algo,
                                            bool vectorize = true,
                                            const KernelPolicy& policy = {}) {
  return ComputeMaximaBlock(values.data(), values.size(), p, proj_schema,
                            algo, vectorize, policy);
}

}  // namespace prefdb::internal

#endif  // PREFDB_EVAL_BMO_INTERNAL_H_
