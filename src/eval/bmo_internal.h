// Internals shared by eval/bmo.cc and the exec/ parallel engine: maxima
// computation over a block of distinct projected values, steered by a
// PhysicalPlan. Not part of the public API surface.

#ifndef PREFDB_EVAL_BMO_INTERNAL_H_
#define PREFDB_EVAL_BMO_INTERNAL_H_

#include <vector>

#include "core/preference.h"
#include "eval/bmo.h"
#include "eval/physical_plan.h"

namespace prefdb {
class ScoreTable;
}  // namespace prefdb

namespace prefdb::internal {

/// Resolves kAuto for a block of distinct values the way sequential BMO
/// does: D&C for skyline fragments, SFS when sort keys are derivable, BNL
/// otherwise. Never returns kAuto, kParallel or kDecomposition.
BmoAlgorithm ResolveBlockAlgorithm(const PrefPtr& p, const Schema& proj_schema);

/// Maximal-value flags for the `count` values at `values`, under p bound
/// against proj_schema, executing `plan`: its algorithm (kAuto resolves
/// data-aware per block — via the compiled table when plan.vectorize and
/// the term compiles, else ResolveBlockAlgorithm), its vectorize switch
/// and its kernel fields (SIMD mode, BNL tile size). Takes a raw range so
/// partition-parallel callers can evaluate contiguous slices without
/// copying tuples. kParallel and kDecomposition are relation-level
/// strategies, not block algorithms; they fall back to BNL here.
std::vector<bool> ComputeMaximaBlock(const Tuple* values, size_t count,
                                     const PrefPtr& p,
                                     const Schema& proj_schema,
                                     const PhysicalPlan& plan);

inline std::vector<bool> ComputeMaximaBlock(const std::vector<Tuple>& values,
                                            const PrefPtr& p,
                                            const Schema& proj_schema,
                                            const PhysicalPlan& plan) {
  return ComputeMaximaBlock(values.data(), values.size(), p, proj_schema,
                            plan);
}

/// Executes a planned block over an (optionally) precompiled table — the
/// one dispatch every consumer shares: kParallel routes to the
/// partition-and-merge engine (handing the table in), a compiled table
/// runs its kernels directly, and a null table falls back to the closure
/// path without re-attempting compilation. `values` may be null when
/// `table` is non-null (the zero-copy columnar compile has no
/// materialized value block); every table-backed path reads only `count`.
std::vector<bool> ExecuteBlockPlan(const Tuple* values, size_t count,
                                   const PrefPtr& p, const Schema& proj_schema,
                                   const ScoreTable* table,
                                   const PhysicalPlan& plan);

std::vector<bool> ExecuteBlockPlan(const std::vector<Tuple>& values,
                                   const PrefPtr& p, const Schema& proj_schema,
                                   const ScoreTable* table,
                                   const PhysicalPlan& plan);

}  // namespace prefdb::internal

#endif  // PREFDB_EVAL_BMO_INTERNAL_H_
