#include "eval/negotiation.h"

#include <algorithm>
#include <unordered_map>

#include "core/complex_preferences.h"
#include "eval/better_than_graph.h"
#include "eval/bmo.h"

namespace prefdb {

namespace {

std::vector<size_t> Difference(const std::vector<size_t>& a,
                               const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

// Levels of every row of R under a preference's better-than graph.
std::vector<size_t> RowLevels(const Relation& r, const PrefPtr& p) {
  BetterThanGraph graph(r, p);
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  // Map graph node values back to projection ids (same distinct set, but
  // possibly different order — match by tuple).
  std::unordered_map<Tuple, size_t, TupleHash> level_of;
  for (size_t i = 0; i < graph.size(); ++i) {
    level_of[graph.values()[i]] = graph.LevelOf(i);
  }
  std::vector<size_t> out(r.size());
  for (size_t row = 0; row < r.size(); ++row) {
    out[row] = level_of[proj.values[proj.row_to_value[row]]];
  }
  return out;
}

}  // namespace

NegotiationAnalysis AnalyzeNegotiation(const Relation& r, const PrefPtr& p1,
                                       const PrefPtr& p2) {
  NegotiationAnalysis out;
  out.pareto_frontier = BmoIndices(r, Pareto(p1, p2));
  std::vector<size_t> best1 = BmoIndices(r, p1);
  std::vector<size_t> best2 = BmoIndices(r, p2);
  out.consensus = Relation::IndexIntersect(best1, best2);
  std::vector<size_t> frontier_and_1 =
      Relation::IndexIntersect(out.pareto_frontier, best1);
  std::vector<size_t> frontier_and_2 =
      Relation::IndexIntersect(out.pareto_frontier, best2);
  out.party1_favored = Difference(frontier_and_1, best2);
  out.party2_favored = Difference(frontier_and_2, best1);
  out.middle_ground = Difference(
      Difference(out.pareto_frontier, best1), best2);
  return out;
}

bool CompromiseProposal::operator<(const CompromiseProposal& other) const {
  size_t max_a = std::max(regret1, regret2);
  size_t max_b = std::max(other.regret1, other.regret2);
  if (max_a != max_b) return max_a < max_b;
  size_t sum_a = regret1 + regret2;
  size_t sum_b = other.regret1 + other.regret2;
  if (sum_a != sum_b) return sum_a < sum_b;
  return row < other.row;
}

std::vector<CompromiseProposal> SuggestCompromises(const Relation& r,
                                                   const PrefPtr& p1,
                                                   const PrefPtr& p2,
                                                   size_t k) {
  std::vector<size_t> frontier = BmoIndices(r, Pareto(p1, p2));
  std::vector<size_t> levels1 = RowLevels(r, p1);
  std::vector<size_t> levels2 = RowLevels(r, p2);
  std::vector<CompromiseProposal> proposals;
  proposals.reserve(frontier.size());
  for (size_t row : frontier) {
    proposals.push_back({row, levels1[row] - 1, levels2[row] - 1});
  }
  std::sort(proposals.begin(), proposals.end());
  if (k > 0 && proposals.size() > k) proposals.resize(k);
  return proposals;
}

}  // namespace prefdb
