// E-negotiation support (the paper's §7 outlook: "the conflict tolerance
// of our preference model forms the basis for research concerned with
// e-negotiations and e-haggling"; §4.1: "unranked values are a natural
// reservoir to negotiate compromises").
//
// Given two parties' preferences P1 and P2 over a database set R, the
// negotiation table is the Pareto frontier sigma[P1 (x) P2](R). This
// module classifies it and ranks compromises by a fairness measure based
// on each party's better-than levels (Def. 2): a candidate's *regret* for
// a party is its level in that party's better-than graph minus 1 (0 =
// that party's best available choice).

#ifndef PREFDB_EVAL_NEGOTIATION_H_
#define PREFDB_EVAL_NEGOTIATION_H_

#include <string>
#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb {

/// Classification of the negotiation table (all vectors hold row indices
/// into R, sorted ascending).
struct NegotiationAnalysis {
  /// Rows best for BOTH parties individually — sign immediately.
  std::vector<size_t> consensus;
  /// The full negotiation table sigma[P1 (x) P2](R).
  std::vector<size_t> pareto_frontier;
  /// Frontier rows best for party 1 but not for party 2 / vice versa.
  std::vector<size_t> party1_favored;
  std::vector<size_t> party2_favored;
  /// Frontier rows best for NEITHER party alone: the compromise reservoir
  /// (these enter the frontier through the YY term of Prop 12).
  std::vector<size_t> middle_ground;
};

NegotiationAnalysis AnalyzeNegotiation(const Relation& r, const PrefPtr& p1,
                                       const PrefPtr& p2);

/// One ranked compromise proposal.
struct CompromiseProposal {
  size_t row;            // index into R
  size_t regret1;        // level of the row under P1, minus 1
  size_t regret2;        // level of the row under P2, minus 1
  /// Fairness key: minimize max(regret1, regret2), tie-break on the sum,
  /// then on row order. 0/0 means a consensus row.
  bool operator<(const CompromiseProposal& other) const;
};

/// Ranks the Pareto frontier by fairness and returns the top k proposals
/// (k = 0 returns the whole frontier ranked).
std::vector<CompromiseProposal> SuggestCompromises(const Relation& r,
                                                   const PrefPtr& p1,
                                                   const PrefPtr& p2,
                                                   size_t k);

}  // namespace prefdb

#endif  // PREFDB_EVAL_NEGOTIATION_H_
