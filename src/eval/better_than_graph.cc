#include "eval/better_than_graph.h"

#include <algorithm>

#include "eval/bmo.h"

namespace prefdb {

BetterThanGraph::BetterThanGraph(const Relation& r, const PrefPtr& p) {
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  proj_schema_ = proj.proj_schema;
  values_ = std::move(proj.values);
  const size_t m = values_.size();
  LessFn less = p->Bind(proj_schema_);

  dominated_by_.assign(m, std::vector<bool>(m, false));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i != j && less(values_[i], values_[j])) dominated_by_[i][j] = true;
    }
  }

  // Transitive reduction: better -> worse edge (j -> i) is a Hasse edge iff
  // there is no intermediate z with i <P z <P j.
  reduced_.assign(m, {});
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < m; ++i) {
      if (!dominated_by_[i][j]) continue;
      bool immediate = true;
      for (size_t z = 0; z < m; ++z) {
        if (z != i && z != j && dominated_by_[i][z] && dominated_by_[z][j]) {
          immediate = false;
          break;
        }
      }
      if (immediate) reduced_[j].push_back(i);
    }
  }

  // Levels: level(x) = 1 for maximal values; otherwise 1 + max level of its
  // immediate better neighbors (longest path from a maximal value, Def. 2).
  level_.assign(m, 0);
  // Kahn-style: process nodes in order of resolved predecessors.
  std::vector<size_t> better_count(m, 0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (dominated_by_[i][j]) ++better_count[i];  // j better than i
    }
  }
  // Immediate better predecessors of each node in the Hasse diagram.
  std::vector<std::vector<size_t>> better_of(m);
  std::vector<size_t> pending(m, 0);
  for (size_t j = 0; j < m; ++j) {
    for (size_t i : reduced_[j]) {
      better_of[i].push_back(j);
    }
  }
  for (size_t i = 0; i < m; ++i) pending[i] = better_of[i].size();
  std::vector<size_t> queue;
  for (size_t i = 0; i < m; ++i) {
    if (pending[i] == 0) {
      level_[i] = 1;
      maximal_.push_back(i);
      queue.push_back(i);
    }
  }
  while (!queue.empty()) {
    size_t j = queue.back();
    queue.pop_back();
    for (size_t i : reduced_[j]) {
      level_[i] = std::max(level_[i], level_[j] + 1);
      if (--pending[i] == 0) queue.push_back(i);
    }
  }
  for (size_t i = 0; i < m; ++i) {
    max_level_ = std::max(max_level_, level_[i]);
    if (reduced_[i].empty()) minimal_.push_back(i);
  }
}

std::vector<Tuple> BetterThanGraph::ValuesAtLevel(size_t level) const {
  std::vector<Tuple> out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (level_[i] == level) out.push_back(values_[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string BetterThanGraph::ToText() const {
  std::string out;
  for (size_t lvl = 1; lvl <= max_level_; ++lvl) {
    out += "Level " + std::to_string(lvl) + ":";
    for (const Tuple& t : ValuesAtLevel(lvl)) {
      out += " " + (t.size() == 1 ? t[0].ToString() : t.ToString());
    }
    out += "\n";
  }
  return out;
}

std::string BetterThanGraph::ToDot(const std::string& name) const {
  auto node_label = [this](size_t i) {
    const Tuple& t = values_[i];
    return t.size() == 1 ? t[0].ToString() : t.ToString();
  };
  std::string out = "digraph " + name + " {\n  rankdir=TB;\n";
  for (size_t i = 0; i < values_.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" + node_label(i) +
           "\\nL" + std::to_string(level_[i]) + "\"];\n";
  }
  for (size_t j = 0; j < values_.size(); ++j) {
    for (size_t i : reduced_[j]) {
      out += "  n" + std::to_string(j) + " -> n" + std::to_string(i) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace prefdb
