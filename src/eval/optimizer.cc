#include "eval/optimizer.h"

#include "core/complex_preferences.h"

namespace prefdb {

namespace {

// Heuristic thresholds: below this size every algorithm finishes in
// microseconds and BNL's simplicity wins.
constexpr size_t kSmallInput = 512;

bool PrioritizedChainHead(const PrefPtr& p) {
  if (p->kind() != PreferenceKind::kPrioritized) return false;
  auto kids = p->children();
  return kids[0]->IsChain() &&
         DisjointAttributeSets(kids[0]->attributes(), kids[1]->attributes());
}

}  // namespace

AlgorithmChoice ChooseAlgorithm(const Relation& r, const PrefPtr& p) {
  const size_t n = r.size();
  if (n <= kSmallInput) {
    return {BmoAlgorithm::kBlockNestedLoop,
            "input below " + std::to_string(kSmallInput) +
                " rows: window scan wins on constants"};
  }
  std::vector<PrefPtr> leaves;
  if (CanUseDivideConquer(p, &leaves)) {
    return {BmoAlgorithm::kDivideConquer,
            "skyline fragment over " + std::to_string(leaves.size()) +
                " LOWEST/HIGHEST chains: KLP75 divide & conquer"};
  }
  if (PrioritizedChainHead(p)) {
    return {BmoAlgorithm::kDecomposition,
            "prioritized with a chain head: Prop 11 cascade evaluation"};
  }
  bool has_keys = false;
  try {
    has_keys = p->BindSortKeys(r.schema().Project(p->attributes()))
                   .has_value();
  } catch (const std::out_of_range&) {
    has_keys = false;
  }
  if (has_keys) {
    return {BmoAlgorithm::kSortFilter,
            "topologically compatible sort keys exist: presort + one-sided "
            "window (SFS)"};
  }
  return {BmoAlgorithm::kBlockNestedLoop,
          "no exploitable structure: generic BNL window scan"};
}

std::string OptimizedQuery::Explain() const {
  std::string out = "preference: " + original->ToString() + "\n";
  if (!rewrites.empty()) {
    out += "rewrites:\n";
    for (const RewriteStep& step : rewrites) {
      out += "  " + step.rule + ": " + step.before + " -> " + step.after +
             "\n";
    }
    out += "simplified: " + simplified->ToString() + "\n";
  } else {
    out += "rewrites: (none)\n";
  }
  out += "algorithm: " + std::string(BmoAlgorithmName(choice.algorithm)) +
         " -- " + choice.rationale + "\n";
  return out;
}

OptimizedQuery Optimize(const Relation& r, const PrefPtr& p) {
  OptimizedQuery out;
  out.original = p;
  out.simplified = Simplify(p, &out.rewrites);
  out.choice = ChooseAlgorithm(r, out.simplified);
  return out;
}

Relation BmoOptimized(const Relation& r, const PrefPtr& p) {
  OptimizedQuery plan = Optimize(r, p);
  return Bmo(r, plan.simplified, {plan.choice.algorithm});
}

}  // namespace prefdb
