#include "eval/optimizer.h"

#include <stdexcept>

#include "core/complex_preferences.h"
#include "exec/score_table.h"
#include "exec/thread_pool.h"

namespace prefdb {

namespace {

// Heuristic thresholds: below this size every algorithm finishes in
// microseconds and BNL's simplicity wins.
constexpr size_t kSmallInput = 512;


bool PrioritizedChainHead(const PrefPtr& p) {
  if (p->kind() != PreferenceKind::kPrioritized) return false;
  auto kids = p->children();
  return kids[0]->IsChain() &&
         DisjointAttributeSets(kids[0]->attributes(), kids[1]->attributes());
}

}  // namespace

AlgorithmChoice ChooseAlgorithm(const Relation& r, const PrefPtr& p,
                                const BmoOptions& options) {
  return ChooseAlgorithm(r.schema(), r.size(), p, options);
}

AlgorithmChoice ChooseAlgorithm(const Schema& schema, size_t num_rows,
                                const PrefPtr& p, const BmoOptions& options) {
  const size_t n = num_rows;
  if (n <= kSmallInput) {
    return {BmoAlgorithm::kBlockNestedLoop,
            "input below " + std::to_string(kSmallInput) +
                " rows: window scan wins on constants"};
  }
  if (PrioritizedChainHead(p)) {
    return {BmoAlgorithm::kDecomposition,
            "prioritized with a chain head: Prop 11 cascade evaluation"};
  }
  const size_t workers = ThreadPool::ResolveThreads(options.num_threads);
  // Same nominal threshold as BmoIndices' kAuto path, applied to the only
  // statistic available here (row count n, an upper bound on the distinct
  // count BmoIndices tests). On duplicate-heavy data the two entry points
  // can therefore differ in *choosing* kParallel, but never in results:
  // the engine degrades to the same sequential block algorithm when too
  // few distinct values remain to split.
  if (n >= options.parallel_threshold && workers > 1) {
    return {BmoAlgorithm::kParallel,
            std::to_string(n) + " rows, up to " + std::to_string(workers) +
                " workers: partitioned local maxima + merge window pass "
                "(sequential when too few distinct values to split)"};
  }
  std::vector<PrefPtr> leaves;
  if (CanUseDivideConquer(p, &leaves)) {
    // The batch dominance kernels moved the BNL-vs-D&C crossover past
    // every measured workload (independent and anti-correlated up to 1M
    // rows, d <= 6): the tiled SIMD window decides 4 row-pairs per
    // iteration and stays cache-resident, while the KLP75 recursion pays
    // per-level allocation and partitioning constants. So D&C remains
    // the pick only for the row-wise (SimdMode::kOff) kernels.
    if (options.vectorize && options.simd != SimdMode::kOff &&
        ScoreTable::CompilableTerm(p)) {
      return {BmoAlgorithm::kBlockNestedLoop,
              "skyline fragment over " + std::to_string(leaves.size()) +
                  " chains: tiled SIMD BNL window beats the KLP75 "
                  "recursion at every measured size"};
    }
    return {BmoAlgorithm::kDivideConquer,
            "skyline fragment over " + std::to_string(leaves.size()) +
                " LOWEST/HIGHEST chains: KLP75 divide & conquer"};
  }
  bool has_keys = false;
  try {
    has_keys =
        p->BindSortKeys(schema.Project(p->attributes())).has_value();
  } catch (const std::out_of_range&) {
    has_keys = false;
  }
  if (has_keys) {
    return {BmoAlgorithm::kSortFilter,
            "topologically compatible sort keys exist: presort + one-sided "
            "window (SFS)"};
  }
  // The score-table compiler widens SFS eligibility beyond closure sort
  // keys: level-based (weak-order) leaves always yield a compiled key, so
  // layered/pos-neg terms and their accumulations presort too.
  if (options.vectorize && ScoreTable::HasStaticSortKeys(p)) {
    return {BmoAlgorithm::kSortFilter,
            "term compiles to score-table kernels with sort keys: "
            "vectorized presort + one-sided window (SFS)"};
  }
  return {BmoAlgorithm::kBlockNestedLoop,
          "no exploitable structure: generic BNL window scan"};
}

std::string OptimizedQuery::Explain() const {
  std::string out = "preference: " + original->ToString() + "\n";
  if (!rewrites.empty()) {
    out += "rewrites:\n";
    for (const RewriteStep& step : rewrites) {
      out += "  " + step.rule + ": " + step.before + " -> " + step.after +
             "\n";
    }
    out += "simplified: " + simplified->ToString() + "\n";
  } else {
    out += "rewrites: (none)\n";
  }
  out += "algorithm: " + std::string(BmoAlgorithmName(choice.algorithm)) +
         " -- " + choice.rationale + "\n";
  return out;
}

OptimizedQuery Optimize(const Relation& r, const PrefPtr& p,
                        const BmoOptions& options) {
  return Optimize(r.schema(), r.size(), p, options);
}

OptimizedQuery Optimize(const Schema& schema, size_t num_rows,
                        const PrefPtr& p, const BmoOptions& options) {
  OptimizedQuery out;
  out.original = p;
  out.simplified = Simplify(p, &out.rewrites);
  out.choice = ChooseAlgorithm(schema, num_rows, out.simplified, options);
  return out;
}

Relation BmoOptimized(const Relation& r, const PrefPtr& p,
                      const BmoOptions& options) {
  OptimizedQuery plan = Optimize(r, p, options);
  BmoOptions exec_options = options;
  exec_options.algorithm = plan.choice.algorithm;
  return Bmo(r, plan.simplified, exec_options);
}

}  // namespace prefdb
