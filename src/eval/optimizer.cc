#include "eval/optimizer.h"

#include <functional>
#include <stdexcept>

#include "core/complex_preferences.h"

namespace prefdb {

PhysicalPlan ChooseAlgorithm(const Relation& r, const PrefPtr& p,
                             const BmoOptions& options) {
  TableStats stats = TableStats::Derive(r, p->attributes());
  return ChooseAlgorithm(stats, r.schema(), r.size(), p, options);
}

PhysicalPlan ChooseAlgorithm(const TableStats& stats, const Schema& schema,
                             size_t pool_rows, const PrefPtr& p,
                             const BmoOptions& options) {
  return PlanPhysical(EstimateTermStats(stats, schema, p, pool_rows),
                      options);
}

PhysicalPlan ChooseAlgorithm(const Schema& schema, size_t num_rows,
                             const PrefPtr& p, const BmoOptions& options) {
  TableStats empty;
  empty.rows = num_rows;
  return ChooseAlgorithm(empty, schema, num_rows, p, options);
}

std::string OptimizedQuery::Explain() const {
  std::string out = "preference: " + original->ToString() + "\n";
  if (!rewrites.empty()) {
    out += "rewrites:\n";
    for (const RewriteStep& step : rewrites) {
      out += "  " + step.rule + ": " + step.before + " -> " + step.after +
             "\n";
    }
    out += "simplified: " + simplified->ToString() + "\n";
  } else {
    out += "rewrites: (none)\n";
  }
  out += plan.ExplainCosts();
  out += "algorithm: " + std::string(BmoAlgorithmName(plan.algorithm)) +
         " -- " + plan.rationale + "\n";
  return out;
}

namespace {

OptimizedQuery OptimizeWith(
    const PrefPtr& p,
    const std::function<PhysicalPlan(const PrefPtr&)>& choose) {
  OptimizedQuery out;
  out.original = p;
  out.simplified = Simplify(p, &out.rewrites);
  out.plan = choose(out.simplified);
  return out;
}

}  // namespace

OptimizedQuery Optimize(const Relation& r, const PrefPtr& p,
                        const BmoOptions& options) {
  return OptimizeWith(p, [&](const PrefPtr& simplified) {
    return ChooseAlgorithm(r, simplified, options);
  });
}

OptimizedQuery Optimize(const TableStats& stats, const Schema& schema,
                        size_t pool_rows, const PrefPtr& p,
                        const BmoOptions& options) {
  return OptimizeWith(p, [&](const PrefPtr& simplified) {
    return ChooseAlgorithm(stats, schema, pool_rows, simplified, options);
  });
}

OptimizedQuery Optimize(const Schema& schema, size_t num_rows,
                        const PrefPtr& p, const BmoOptions& options) {
  return OptimizeWith(p, [&](const PrefPtr& simplified) {
    return ChooseAlgorithm(schema, num_rows, simplified, options);
  });
}

Relation BmoOptimized(const Relation& r, const PrefPtr& p,
                      const BmoOptions& options) {
  OptimizedQuery optimized = Optimize(r, p, options);
  BmoOptions exec_options = options;
  exec_options.algorithm = optimized.plan.algorithm;
  return Bmo(r, optimized.simplified, exec_options);
}

}  // namespace prefdb
