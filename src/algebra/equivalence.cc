#include "algebra/equivalence.h"

namespace prefdb {

EquivalenceResult CheckEquivalent(const PrefPtr& p1, const PrefPtr& p2,
                                  const Schema& schema,
                                  const std::vector<Tuple>& sample) {
  EquivalenceResult res;
  if (!SameAttributeSet(p1->attributes(), p2->attributes())) {
    res.equivalent = false;
    res.counterexample = "attribute sets differ: " + p1->ToString() + " vs " +
                         p2->ToString();
    return res;
  }
  LessFn l1 = p1->Bind(schema);
  LessFn l2 = p2->Bind(schema);
  for (const Tuple& x : sample) {
    for (const Tuple& y : sample) {
      bool a = l1(x, y);
      bool b = l2(x, y);
      if (a != b) {
        res.equivalent = false;
        res.counterexample = "x=" + x.ToString() + " y=" + y.ToString() +
                             ": lhs says " + (a ? "x<y" : "not x<y") +
                             ", rhs says " + (b ? "x<y" : "not x<y");
        return res;
      }
    }
  }
  return res;
}

EquivalenceResult CheckEquivalent(const PrefPtr& p1, const PrefPtr& p2,
                                  const Relation& r) {
  return CheckEquivalent(p1, p2, r.schema(), r.tuples());
}

std::string CheckStrictPartialOrder(const PrefPtr& p, const Schema& schema,
                                    const std::vector<Tuple>& sample) {
  LessFn less = p->Bind(schema);
  const size_t n = sample.size();
  // Irreflexivity.
  for (size_t i = 0; i < n; ++i) {
    if (less(sample[i], sample[i])) {
      return "irreflexivity violated at " + sample[i].ToString();
    }
  }
  // Asymmetry (implied by irreflexivity + transitivity, but checking it
  // directly yields better counterexamples).
  std::vector<std::vector<bool>> m(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      m[i][j] = less(sample[i], sample[j]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (m[i][j] && m[j][i]) {
        return "asymmetry violated between " + sample[i].ToString() + " and " +
               sample[j].ToString();
      }
    }
  }
  // Transitivity.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (!m[i][j]) continue;
      for (size_t k = 0; k < n; ++k) {
        if (m[j][k] && !m[i][k]) {
          return "transitivity violated: " + sample[i].ToString() + " < " +
                 sample[j].ToString() + " < " + sample[k].ToString() +
                 " but not " + sample[i].ToString() + " < " +
                 sample[k].ToString();
        }
      }
    }
  }
  return "";
}

bool IsChainOn(const PrefPtr& p, const Schema& schema,
               const std::vector<Tuple>& sample) {
  LessFn less = p->Bind(schema);
  EqFn eq = p->BindEquality(schema);
  for (const Tuple& x : sample) {
    for (const Tuple& y : sample) {
      if (eq(x, y)) continue;
      if (!less(x, y) && !less(y, x)) return false;
    }
  }
  return true;
}

std::vector<Tuple> CrossProduct(const std::vector<std::vector<Value>>& doms) {
  std::vector<Tuple> out;
  if (doms.empty()) return out;
  size_t total = 1;
  for (const auto& d : doms) total *= d.size();
  out.reserve(total);
  std::vector<size_t> idx(doms.size(), 0);
  for (size_t c = 0; c < total; ++c) {
    Tuple t;
    for (size_t i = 0; i < doms.size(); ++i) t.Append(doms[i][idx[i]]);
    out.push_back(std::move(t));
    for (size_t i = doms.size(); i-- > 0;) {
      if (++idx[i] < doms[i].size()) break;
      idx[i] = 0;
    }
  }
  return out;
}

}  // namespace prefdb
