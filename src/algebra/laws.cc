#include "algebra/laws.h"

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {

std::vector<LawInstance> InstantiateGenericLaws(const LawInputs& in) {
  std::vector<LawInstance> laws;
  const PrefPtr& p = in.p;
  const PrefPtr& q = in.q;
  const PrefPtr& r = in.r;
  const PrefPtr& d1 = in.d1;
  const PrefPtr& d2 = in.d2;
  const PrefPtr& d3 = in.d3;
  const PrefPtr a = AntiChain(in.attrs_a);
  auto add = [&laws](std::string id, std::string stmt, PrefPtr lhs,
                     PrefPtr rhs) {
    laws.push_back({std::move(id), std::move(stmt), std::move(lhs),
                    std::move(rhs)});
  };

  // --- Proposition 2: commutativity / associativity.
  add("Prop2b.pareto-comm", "P1 (x) P2 == P2 (x) P1", Pareto(d1, d2),
      Pareto(d2, d1));
  add("Prop2b.pareto-comm-shared", "P (x) Q == Q (x) P (shared attrs)",
      Pareto(p, q), Pareto(q, p));
  add("Prop2b.pareto-assoc", "(P1 (x) P2) (x) P3 == P1 (x) (P2 (x) P3)",
      Pareto(Pareto(d1, d2), d3), Pareto(d1, Pareto(d2, d3)));
  add("Prop2c.prior-assoc", "(P1 & P2) & P3 == P1 & (P2 & P3)",
      Prioritized(Prioritized(d1, d2), d3),
      Prioritized(d1, Prioritized(d2, d3)));
  add("Prop2d.isect-comm", "P1 <> P2 == P2 <> P1", Intersection(p, q),
      Intersection(q, p));
  add("Prop2d.isect-assoc", "(P1 <> P2) <> P3 == P1 <> (P2 <> P3)",
      Intersection(Intersection(p, q), r), Intersection(p, Intersection(q, r)));
  if (in.u1 && in.u2 && in.u3) {
    add("Prop2e.union-comm", "P1 + P2 == P2 + P1", DisjointUnion(in.u1, in.u2),
        DisjointUnion(in.u2, in.u1));
    add("Prop2e.union-assoc", "(P1 + P2) + P3 == P1 + (P2 + P3)",
        DisjointUnion(DisjointUnion(in.u1, in.u2), in.u3),
        DisjointUnion(in.u1, DisjointUnion(in.u2, in.u3)));
  }

  // --- Proposition 3: further laws.
  add("Prop3a.antichain-selfdual", "(S<->)^d == S<->", Dual(a), a);
  add("Prop3b.dual-involution", "(P^d)^d == P", Dual(Dual(p)), p);
  add("Prop3f.isect-idem", "P <> P == P", Intersection(p, p), p);
  add("Prop3g.isect-dual", "P <> P^d == A<->", Intersection(p, Dual(p)), a);
  add("Prop3g.isect-antichain", "P <> A<-> == A<->", Intersection(p, a), a);
  add("Prop3i.prior-idem", "P & P == P", Prioritized(p, p), p);
  add("Prop3i.prior-dual", "P & P^d == P", Prioritized(p, Dual(p)), p);
  add("Prop3j.prior-antichain-right", "P & A<-> == P", Prioritized(p, a), p);
  add("Prop3k.prior-antichain-left", "A<-> & P == A<->", Prioritized(a, p), a);
  add("Prop3l.pareto-idem", "P (x) P == P", Pareto(p, p), p);
  add("Prop3m.antichain-pareto", "A<-> (x) P == A<-> & P (same attrs)",
      Pareto(a, p), Prioritized(a, p));
  add("Prop3n.pareto-antichain", "P (x) A<-> == A<->", Pareto(p, a), a);
  add("Prop3n.pareto-dual", "P (x) P^d == A<->", Pareto(p, Dual(p)), a);

  // --- Proposition 4: discrimination theorem.
  add("Prop4a.prior-shared", "P1 & P2 == P1 (same attrs)", Prioritized(p, q),
      p);
  add("Prop4b.prior-decompose",
      "P1 & P2 == P1 + (A1<-> & P2) (disjoint attrs)", Prioritized(d1, d2),
      DisjointUnion(d1, Prioritized(AntiChain(d1->attributes()), d2)));

  // --- Proposition 5: non-discrimination theorem.
  add("Prop5.nondiscrimination",
      "P1 (x) P2 == (P1 & P2) <> (P2 & P1) (disjoint attrs)", Pareto(d1, d2),
      Intersection(Prioritized(d1, d2), Prioritized(d2, d1)));
  add("Prop5.nondiscrimination-shared",
      "P1 (x) P2 == (P1 & P2) <> (P2 & P1) (shared attrs)", Pareto(p, q),
      Intersection(Prioritized(p, q), Prioritized(q, p)));

  // --- Proposition 6: '<>' is a sub-constructor of '(x)'.
  add("Prop6.pareto-is-isect", "P1 (x) P2 == P1 <> P2 (same attrs)",
      Pareto(p, q), Intersection(p, q));

  return laws;
}

std::vector<LawInstance> SpecialLawInstances(
    const std::string& attribute, const std::vector<Value>& values) {
  std::vector<LawInstance> laws;
  PrefPtr pos = Pos(attribute, values);
  PrefPtr neg = Neg(attribute, values);
  PrefPtr low = Lowest(attribute);
  PrefPtr high = Highest(attribute);
  PrefPtr a = AntiChain(attribute);
  laws.push_back({"Prop3a.antichain-selfdual", "(S<->)^d == S<->", Dual(a), a});
  laws.push_back(
      {"Prop3d.highest-dual-lowest", "HIGHEST == LOWEST^d", high, Dual(low)});
  laws.push_back(
      {"Prop3d.lowest-dual-highest", "LOWEST == HIGHEST^d", low, Dual(high)});
  laws.push_back({"Prop3e.pos-dual-neg", "POS^d == NEG (same set)", Dual(pos),
                  neg});
  laws.push_back({"Prop3e.neg-dual-pos", "NEG^d == POS (same set)", Dual(neg),
                  pos});
  return laws;
}

}  // namespace prefdb
