// Term rewriting with the algebraic laws of §4: a preference-query
// optimizer front-end. Simplify() applies the laws of Props 3, 4a and 6 as
// left-to-right rewrite rules, bottom-up, until a fixpoint. Every rewrite
// preserves equivalence (Def. 13), hence by Prop. 7 the BMO answer.

#ifndef PREFDB_ALGEBRA_SIMPLIFIER_H_
#define PREFDB_ALGEBRA_SIMPLIFIER_H_

#include <string>
#include <vector>

#include "core/preference.h"

namespace prefdb {

/// One applied rewrite, for EXPLAIN-style traces.
struct RewriteStep {
  std::string rule;    // e.g. "Prop3b: (P^d)^d -> P"
  std::string before;  // term rendering before
  std::string after;   // term rendering after
};

/// Rewrites the term to a simpler equivalent form. If `trace` is non-null,
/// the applied steps are appended.
PrefPtr Simplify(const PrefPtr& p, std::vector<RewriteStep>* trace = nullptr);

/// True iff q is (after dual-canonicalization) the dual of p — used to
/// recognize P <> P^d and P (x) P^d patterns.
bool IsDualOf(const PrefPtr& p, const PrefPtr& q);

}  // namespace prefdb

#endif  // PREFDB_ALGEBRA_SIMPLIFIER_H_
