// The preference-algebra law registry (Kießling §4, Props 2-6).
//
// Each law is a named template that, instantiated with concrete component
// preferences, yields a (lhs, rhs) pair of preference terms claimed to be
// equivalent (Def. 13). The test suite and the `exp_algebra_laws`
// reproduction harness instantiate every law with randomized components
// over exhaustively enumerated finite domains and check equivalence.

#ifndef PREFDB_ALGEBRA_LAWS_H_
#define PREFDB_ALGEBRA_LAWS_H_

#include <functional>
#include <string>
#include <vector>

#include "core/preference.h"

namespace prefdb {

/// Component preferences a law template draws from.
struct LawInputs {
  /// Attribute set A shared by p, q, r (arbitrary same-attribute terms).
  std::vector<std::string> attrs_a;
  PrefPtr p;
  PrefPtr q;
  PrefPtr r;
  /// Pairwise attribute-disjoint preferences (for '&', '(x)' laws).
  PrefPtr d1;
  PrefPtr d2;
  PrefPtr d3;
  /// Range-disjoint preferences over attrs_a (for '+' laws); see Def. 4.
  PrefPtr u1;
  PrefPtr u2;
  PrefPtr u3;
};

/// One law instantiated: check lhs ≡ rhs.
struct LawInstance {
  std::string id;         // e.g. "Prop2b.pareto-commutative"
  std::string statement;  // human-readable law statement
  PrefPtr lhs;
  PrefPtr rhs;
};

/// Instantiates every law of Props 2-6 (except those with dedicated
/// constructors, e.g. Prop 3d/e which need POS/NEG/LOWEST/HIGHEST inputs
/// and are returned by SpecialLawInstances below).
std::vector<LawInstance> InstantiateGenericLaws(const LawInputs& in);

/// Laws about specific base constructors:
///  Prop 3a  (S<->)^d ≡ S<->
///  Prop 3d  HIGHEST ≡ LOWEST^d
///  Prop 3e  POS^d ≡ NEG and NEG^d ≡ POS (same value set)
/// `attribute` names the attribute, `values` the shared POS/NEG value set.
std::vector<LawInstance> SpecialLawInstances(const std::string& attribute,
                                             const std::vector<Value>& values);

}  // namespace prefdb

#endif  // PREFDB_ALGEBRA_LAWS_H_
