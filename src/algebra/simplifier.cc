#include "algebra/simplifier.h"

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {

namespace {

void Record(std::vector<RewriteStep>* trace, const std::string& rule,
            const PrefPtr& before, const PrefPtr& after) {
  if (trace) trace->push_back({rule, before->ToString(), after->ToString()});
}

// Pushes a dual one level down when a named rewrite exists; returns nullptr
// if no rule applies.
PrefPtr PushDual(const PrefPtr& inner) {
  switch (inner->kind()) {
    case PreferenceKind::kDual:
      // (P^d)^d -> P (Prop 3b)
      return dynamic_cast<const DualPreference&>(*inner).inner();
    case PreferenceKind::kAntiChain:
      // (S<->)^d -> S<-> (Prop 3a)
      return inner;
    case PreferenceKind::kLowest:
      // LOWEST^d -> HIGHEST (Prop 3d)
      return Highest(inner->attributes()[0]);
    case PreferenceKind::kHighest:
      return Lowest(inner->attributes()[0]);
    case PreferenceKind::kPos: {
      // POS^d -> NEG (Prop 3e)
      const auto& pos = dynamic_cast<const PosPreference&>(*inner);
      return Neg(pos.attribute(),
                 std::vector<Value>(pos.pos_set().begin(),
                                    pos.pos_set().end()));
    }
    case PreferenceKind::kNeg: {
      const auto& neg = dynamic_cast<const NegPreference&>(*inner);
      return Pos(neg.attribute(),
                 std::vector<Value>(neg.neg_set().begin(),
                                    neg.neg_set().end()));
    }
    default:
      return nullptr;
  }
}

// One top-level rewrite attempt; children are already simplified.
// Returns nullptr if no rule applies at this node.
PrefPtr RewriteTop(const PrefPtr& p, std::vector<RewriteStep>* trace) {
  switch (p->kind()) {
    case PreferenceKind::kDual: {
      const auto& dual = dynamic_cast<const DualPreference&>(*p);
      if (PrefPtr pushed = PushDual(dual.inner())) {
        Record(trace, "Prop3a-e: dual elimination", p, pushed);
        return pushed;
      }
      return nullptr;
    }
    case PreferenceKind::kIntersection: {
      const auto& node = dynamic_cast<const IntersectionPreference&>(*p);
      const PrefPtr& l = node.left();
      const PrefPtr& r = node.right();
      if (l->StructurallyEquals(*r)) {
        Record(trace, "Prop3f: P <> P -> P", p, l);
        return l;
      }
      if (IsDualOf(l, r)) {
        PrefPtr a = AntiChain(p->attributes());
        Record(trace, "Prop3g: P <> P^d -> A<->", p, a);
        return a;
      }
      if (l->kind() == PreferenceKind::kAntiChain ||
          r->kind() == PreferenceKind::kAntiChain) {
        PrefPtr a = AntiChain(p->attributes());
        Record(trace, "Prop3g: P <> A<-> -> A<->", p, a);
        return a;
      }
      return nullptr;
    }
    case PreferenceKind::kPrioritized: {
      const auto& node = dynamic_cast<const PrioritizedPreference&>(*p);
      const PrefPtr& l = node.left();
      const PrefPtr& r = node.right();
      if (l->kind() == PreferenceKind::kAntiChain &&
          SameAttributeSet(l->attributes(), r->attributes())) {
        Record(trace, "Prop3k: A<-> & P -> A<->", p, l);
        return l;
      }
      if (r->kind() == PreferenceKind::kAntiChain &&
          SameAttributeSet(l->attributes(), r->attributes())) {
        Record(trace, "Prop3j: P & A<-> -> P", p, l);
        return l;
      }
      if (SameAttributeSet(l->attributes(), r->attributes())) {
        // Subsumes Prop3i (P & P, P & P^d) and Prop4a (P1 & P2 -> P1).
        Record(trace, "Prop4a: P1 & P2 -> P1 (same attrs)", p, l);
        return l;
      }
      return nullptr;
    }
    case PreferenceKind::kPareto: {
      const auto& node = dynamic_cast<const ParetoPreference&>(*p);
      const PrefPtr& l = node.left();
      const PrefPtr& r = node.right();
      if (l->StructurallyEquals(*r)) {
        Record(trace, "Prop3l: P (x) P -> P", p, l);
        return l;
      }
      if (IsDualOf(l, r)) {
        PrefPtr a = AntiChain(p->attributes());
        Record(trace, "Prop3n: P (x) P^d -> A<->", p, a);
        return a;
      }
      if (SameAttributeSet(l->attributes(), r->attributes())) {
        if (l->kind() == PreferenceKind::kAntiChain ||
            r->kind() == PreferenceKind::kAntiChain) {
          // Prop3m + Prop3k / Prop3n.
          PrefPtr a = AntiChain(p->attributes());
          Record(trace, "Prop3m/n: A<-> (x) P -> A<-> (same attrs)", p, a);
          return a;
        }
        PrefPtr isect = Intersection(l, r);
        Record(trace, "Prop6: P1 (x) P2 -> P1 <> P2 (same attrs)", p, isect);
        return isect;
      }
      return nullptr;
    }
    case PreferenceKind::kLinearSum:
      return nullptr;
    default:
      return nullptr;
  }
}

PrefPtr SimplifyRec(const PrefPtr& p, std::vector<RewriteStep>* trace,
                    int depth) {
  if (depth > 64) return p;  // safety valve against rule ping-pong
  // First simplify children by rebuilding the node when any child changed.
  PrefPtr cur = p;
  switch (cur->kind()) {
    case PreferenceKind::kDual: {
      const auto& node = dynamic_cast<const DualPreference&>(*cur);
      PrefPtr c = SimplifyRec(node.inner(), trace, depth + 1);
      if (c != node.inner()) cur = Dual(c);
      break;
    }
    case PreferenceKind::kPareto: {
      const auto& node = dynamic_cast<const ParetoPreference&>(*cur);
      PrefPtr l = SimplifyRec(node.left(), trace, depth + 1);
      PrefPtr r = SimplifyRec(node.right(), trace, depth + 1);
      if (l != node.left() || r != node.right()) cur = Pareto(l, r);
      break;
    }
    case PreferenceKind::kPrioritized: {
      const auto& node = dynamic_cast<const PrioritizedPreference&>(*cur);
      PrefPtr l = SimplifyRec(node.left(), trace, depth + 1);
      PrefPtr r = SimplifyRec(node.right(), trace, depth + 1);
      if (l != node.left() || r != node.right()) cur = Prioritized(l, r);
      break;
    }
    case PreferenceKind::kIntersection: {
      const auto& node = dynamic_cast<const IntersectionPreference&>(*cur);
      PrefPtr l = SimplifyRec(node.left(), trace, depth + 1);
      PrefPtr r = SimplifyRec(node.right(), trace, depth + 1);
      if (l != node.left() || r != node.right()) cur = Intersection(l, r);
      break;
    }
    case PreferenceKind::kDisjointUnion: {
      const auto& node = dynamic_cast<const DisjointUnionPreference&>(*cur);
      PrefPtr l = SimplifyRec(node.left(), trace, depth + 1);
      PrefPtr r = SimplifyRec(node.right(), trace, depth + 1);
      if (l != node.left() || r != node.right()) cur = DisjointUnion(l, r);
      break;
    }
    default:
      break;  // leaves and other nodes: nothing to rebuild
  }
  // Then rewrite this node to a fixpoint.
  while (PrefPtr next = RewriteTop(cur, trace)) {
    cur = SimplifyRec(next, trace, depth + 1);
  }
  return cur;
}

}  // namespace

bool IsDualOf(const PrefPtr& p, const PrefPtr& q) {
  // Compare canonical forms of Dual(p) and q.
  PrefPtr dual_p = Simplify(Dual(p));
  PrefPtr canon_q = Simplify(q);
  return dual_p->StructurallyEquals(*canon_q);
}

PrefPtr Simplify(const PrefPtr& p, std::vector<RewriteStep>* trace) {
  return SimplifyRec(p, trace, 0);
}

}  // namespace prefdb
