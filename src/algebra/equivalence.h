// Semantic equivalence of preference terms (Kießling Def. 13):
// P1 ≡ P2 iff A1 = A2 and <P1 and <P2 agree on all of dom(A1).
//
// Over infinite domains equivalence is checked on a finite witness sample;
// the law suite uses exhaustively enumerated finite domains, making the
// check exact there.

#ifndef PREFDB_ALGEBRA_EQUIVALENCE_H_
#define PREFDB_ALGEBRA_EQUIVALENCE_H_

#include <string>
#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb {

/// Result of an equivalence check; on failure carries a human-readable
/// counterexample for diagnostics.
struct EquivalenceResult {
  bool equivalent = true;
  std::string counterexample;

  explicit operator bool() const { return equivalent; }
};

/// Checks P1 ≡ P2 over the given tuple sample (interpreted as dom(A)):
/// attribute sets must be equal as sets and the bound orders must agree on
/// every ordered pair of sample tuples.
EquivalenceResult CheckEquivalent(const PrefPtr& p1, const PrefPtr& p2,
                                  const Schema& schema,
                                  const std::vector<Tuple>& sample);

/// Convenience overload over a relation's tuples.
EquivalenceResult CheckEquivalent(const PrefPtr& p1, const PrefPtr& p2,
                                  const Relation& r);

/// Verifies the strict-partial-order axioms (Def. 1) of a bound preference
/// on a sample: irreflexivity, transitivity, and (implied) asymmetry.
/// Returns a failure description or empty string if all axioms hold.
std::string CheckStrictPartialOrder(const PrefPtr& p, const Schema& schema,
                                    const std::vector<Tuple>& sample);

/// True iff the preference is total (a chain, Def. 3a) on the sample:
/// every pair of tuples differing on P's attributes is ordered.
bool IsChainOn(const PrefPtr& p, const Schema& schema,
               const std::vector<Tuple>& sample);

/// Builds the full cross-product sample dom(A1) x ... x dom(Ak) from
/// per-attribute candidate value lists (for exhaustive law checking on
/// small domains).
std::vector<Tuple> CrossProduct(const std::vector<std::vector<Value>>& doms);

}  // namespace prefdb

#endif  // PREFDB_ALGEBRA_EQUIVALENCE_H_
