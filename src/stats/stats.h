// The statistics subsystem feeding the cost-based planner
// (eval/physical_plan.h): per-relation column statistics maintained
// incrementally on the engine's versioned snapshots, and per-term
// statistics (distinct counts, injectivity, estimated antichain width)
// derived either from table statistics alone (estimation, before any
// data is materialized) or from a compiled score table (measurement,
// including a sampled window probe).
//
// The paper's §7 outlook asks for "cost-based optimization to choose
// between direct implementations of the Pareto operator and divide &
// conquer algorithms" — these are the observed quantities that choice
// runs on.

#ifndef PREFDB_STATS_STATS_H_
#define PREFDB_STATS_STATS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/preference.h"
#include "relation/relation.h"

namespace prefdb {

class ScoreTable;

/// Per-column statistics of one relation snapshot. Distinct counts are
/// exact (hash-set based); the builder keeps the sets so Insert-time
/// maintenance is O(columns) per row instead of a rescan.
struct ColumnStats {
  size_t distinct = 0;
  /// True when distinct tracking hit the builder's saturation cap: the
  /// real count is *at least* `distinct`; estimation falls back to
  /// pool-scale cardinality.
  bool distinct_saturated = false;
  size_t null_count = 0;
  size_t nan_count = 0;
  /// Non-null values that are not numeric (strings in an INT column
  /// break the LOWEST/HIGHEST monotone fast path and score them -inf).
  size_t non_numeric_count = 0;

  bool AllNumeric(size_t rows) const {
    return null_count == 0 && nan_count == 0 && non_numeric_count == 0 &&
           rows > 0;
  }
};

/// Statistics of one relation snapshot. Cheap to copy (plain counters);
/// the engine shares one instance per (table, version) across plans.
struct TableStats {
  size_t rows = 0;
  std::vector<std::string> names;    // column names, schema order
  std::vector<ColumnStats> columns;  // aligned with names

  /// Stats for `name`, or nullptr when the column is unknown (planning
  /// then falls back to worst-case assumptions).
  const ColumnStats* Column(const std::string& name) const;

  /// Full-scan derivation for standalone callers (the free-function BMO
  /// paths and tests). `attrs` restricts the scan to the named columns
  /// (empty = all), so per-term derivation costs O(rows * |A|).
  static TableStats Derive(const Relation& r,
                           const std::vector<std::string>& attrs = {});
};

/// Incremental maintainer of TableStats: the engine keeps one per table
/// and feeds Insert rows through AddRow, so statistics stay exact across
/// mutations without rescanning the relation. Per-column distinct
/// tracking saturates at 2^16 values (the count then reads "at least
/// 65536"), bounding the builder's memory independent of table size.
class TableStatsBuilder {
 public:
  explicit TableStatsBuilder(const Schema& schema);
  explicit TableStatsBuilder(const Relation& r);

  void AddRow(const Tuple& row);
  /// Current statistics (copies the counters, not the hash sets).
  TableStats Snapshot() const;

 private:
  TableStats stats_;
  std::vector<std::unordered_set<Value, ValueHash>> distinct_;
};

/// Statistics of one preference term against one candidate pool: the
/// cost model's inputs. Derived by estimation (EstimateTermStats, from
/// TableStats + term structure) or measurement (MeasureTermStats, from a
/// compiled score table, including a sampled window probe).
struct TermStats {
  /// Candidate rows n (duplicates included; WHERE survivors).
  size_t input_rows = 0;
  /// Distinct projections m — what the maxima kernels actually scan.
  size_t distinct_values = 0;
  /// Compiled score columns d (term attribute count on the closure path).
  size_t dims = 0;
  /// Lexicographic sort keys the compiled table exposes (0 = none).
  size_t table_keys = 0;
  /// Closure-derivable sort keys exist (Preference::BindSortKeys).
  bool closure_keys = false;
  /// The term compiles into the score-table kernels.
  bool compilable = false;
  /// Coordinatewise score dominance is (predicted to be) exact: flat
  /// Pareto with every column injective — the KLP75 precondition.
  bool dc_exact = false;
  /// Prioritized accumulation with a chain head over disjoint attributes
  /// (the Prop 11 cascade structure).
  bool chain_head = false;
  /// Distinct values of the chain head's attribute (0 = unknown).
  size_t head_distinct = 0;
  /// Estimated maxima count w — the BNL window / SFS survivor set size.
  double est_window = 1.0;
  /// est_window came from a sampled kernel probe, not the closed form.
  bool measured_window = false;

  std::string ToString() const;
};

/// Estimates term statistics from table statistics alone (no data
/// materialized): distinct projections from per-column distinct counts,
/// window width from the independence closed form, injectivity from
/// leaf kinds + column numeric-ness. `pool_rows` is the candidate pool
/// (WHERE survivors); pass stats.rows when unfiltered. `schema` resolves
/// the closure sort-key probe (Preference::BindSortKeys).
TermStats EstimateTermStats(const TableStats& stats, const Schema& schema,
                            const PrefPtr& p, size_t pool_rows);

/// Measures term statistics from a compiled score table over the actual
/// distinct-value block: exact column distinct counts and injectivity;
/// when the block is large enough, the window width is extrapolated from
/// maxima probes of two nested sample prefixes (a two-point fit of the
/// Pareto-front growth exponent), which is what distinguishes
/// anti-correlated from independent data — the closed form cannot.
TermStats MeasureTermStats(const ScoreTable& table, const PrefPtr& p,
                           size_t input_rows);

/// The (ln m)^(d-1) / (d-1)! skyline-cardinality closed form for
/// independent dimensions, clamped to [1, m].
double WindowClosedForm(size_t m, size_t eff_dims);

/// Lifetime counters of one maintained view (ivm/maintained_view.h):
/// mutation mix, result-set churn, and how often delete maintenance fell
/// back to a full reseed. Inputs to EstimateViewMaintenanceNs /
/// EstimateViewReseedNs (eval/physical_plan.h) and surfaced per
/// subscription for observability.
struct ViewMaintenanceStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  /// Rows that entered / left the maintained result set across all
  /// incremental mutations (resync snapshots are not re-counted).
  uint64_t enters = 0;
  uint64_t exits = 0;
  /// Delete passes where the cost model priced a full reseed below
  /// witness-orphan maintenance (typically: most witnesses died at once).
  uint64_t reseeds = 0;
};

}  // namespace prefdb

#endif  // PREFDB_STATS_STATS_H_
