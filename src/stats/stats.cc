#include "stats/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <stdexcept>

#include "exec/score_table.h"

namespace prefdb {

namespace {

bool ValueIsNan(const Value& v) {
  return v.is_double() && std::isnan(v.as_double());
}

/// Distinct tracking saturates at this many values per column, bounding
/// both derivation paths' memory independent of table size.
constexpr size_t kDistinctCap = 1 << 16;

/// Leaves of a compilable accumulation in score-table column order
/// (DUAL wrappers stripped; Pareto/prioritized left-to-right, matching
/// ScoreTable::Compile's build recursion).
void CollectLeaves(const PrefPtr& p, std::vector<PrefPtr>* out) {
  PrefPtr cur = p;
  while (cur->kind() == PreferenceKind::kDual) cur = cur->children()[0];
  if (cur->kind() == PreferenceKind::kPareto ||
      cur->kind() == PreferenceKind::kPrioritized) {
    for (const PrefPtr& child : cur->children()) CollectLeaves(child, out);
    return;
  }
  out->push_back(cur);
}

bool PrioritizedChainHead(const PrefPtr& p) {
  if (p->kind() != PreferenceKind::kPrioritized) return false;
  auto kids = p->children();
  return kids[0]->IsChain() &&
         DisjointAttributeSets(kids[0]->attributes(), kids[1]->attributes());
}

/// Estimated number of distinct *score classes* a leaf induces on a
/// column with `distinct` distinct values: injective leaves resolve every
/// value, level-based leaves collapse values into a handful of layers.
size_t LeafClasses(const PrefPtr& leaf, size_t distinct, bool all_numeric) {
  switch (leaf->kind()) {
    case PreferenceKind::kLowest:
    case PreferenceKind::kHighest:
      // Strictly monotone score: injective on numeric columns; NULLs and
      // strings collapse into the shared -inf class.
      return all_numeric ? distinct : std::max<size_t>(1, distinct / 2);
    case PreferenceKind::kAround:
    case PreferenceKind::kBetween:
    case PreferenceKind::kScore:
      // Distance-style scores tie symmetric values (|x-z| collapses two
      // values per class in the worst case).
      return std::max<size_t>(1, distinct / 2);
    case PreferenceKind::kPos:
    case PreferenceKind::kNeg:
      return std::min<size_t>(distinct, 2);
    case PreferenceKind::kPosNeg:
    case PreferenceKind::kPosPos:
      return std::min<size_t>(distinct, 3);
    case PreferenceKind::kLayered:
    case PreferenceKind::kExplicit:
      return std::min<size_t>(distinct, 4);
    case PreferenceKind::kAntiChain:
      // Pure equality: no value dominates another.
      return 1;
    default:
      return std::max<size_t>(1, distinct);
  }
}

size_t LeafInputDistinct(const TableStats& stats, const PrefPtr& leaf,
                         size_t pool_rows) {
  size_t distinct = pool_rows;
  for (const std::string& attr : leaf->attributes()) {
    const ColumnStats* c = stats.Column(attr);
    // A saturated counter only proves "at least the cap": assume
    // pool-scale cardinality rather than a 15x-low frozen count.
    if (c != nullptr && !c->distinct_saturated) {
      distinct = std::min(distinct, std::max<size_t>(1, c->distinct));
    }
  }
  return std::min(distinct, std::max<size_t>(1, pool_rows));
}

bool LeafAllNumeric(const TableStats& stats, const PrefPtr& leaf) {
  for (const std::string& attr : leaf->attributes()) {
    const ColumnStats* c = stats.Column(attr);
    if (!c || !c->AllNumeric(stats.rows)) return false;
  }
  return true;
}

/// Leaves of a subtree whose score classes exceed 1 act as independent
/// skyline dimensions; constant columns cannot discriminate. Pure
/// equality leaves (anti-chains) are not dimensions either — they
/// *partition* the block: Pareto dominance requires equality on them,
/// so every distinct combination is its own incomparable group.
/// `group_product` multiplies in those group counts.
size_t EffectiveDims(const TableStats& stats, const PrefPtr& p,
                     size_t pool_rows, double* group_product) {
  std::vector<PrefPtr> leaves;
  CollectLeaves(p, &leaves);
  size_t dims = 0;
  for (const PrefPtr& leaf : leaves) {
    if (leaf->kind() == PreferenceKind::kAntiChain) {
      if (group_product != nullptr) {
        *group_product *= static_cast<double>(
            std::max<size_t>(1, LeafInputDistinct(stats, leaf, pool_rows)));
      }
      continue;
    }
    size_t classes = LeafClasses(leaf, LeafInputDistinct(stats, leaf, pool_rows),
                                 LeafAllNumeric(stats, leaf));
    if (classes > 1) ++dims;
  }
  return dims;
}

/// Expected fraction of m distinct values that are maximal under the
/// subtree. Pareto subtrees use the independence closed form over their
/// effective dimensions; prioritized subtrees multiply the head's
/// surviving fraction into a tail evaluated on the shrunken pool (the
/// Prop 11 view: the tail only discriminates within the head's best
/// block); leaves keep their top score class.
double MaximaFraction(const TableStats& stats, const PrefPtr& p0, size_t m,
                      size_t pool_rows) {
  if (m == 0) return 0.0;
  PrefPtr p = p0;
  while (p->kind() == PreferenceKind::kDual) p = p->children()[0];
  switch (p->kind()) {
    case PreferenceKind::kPareto: {
      // Anti-chain columns split the block into `groups` incomparable
      // partitions (equality on them is required for dominance); each
      // partition keeps its own skyline over the ordering dimensions.
      double groups = 1.0;
      size_t dims = EffectiveDims(stats, p, pool_rows, &groups);
      groups = std::min(groups, static_cast<double>(m));
      const size_t m_group = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(m) / groups));
      const double w =
          std::min(static_cast<double>(m),
                   groups * WindowClosedForm(m_group, std::max<size_t>(1, dims)));
      return w / static_cast<double>(m);
    }
    case PreferenceKind::kPrioritized: {
      auto kids = p->children();
      PrefPtr head = kids[0];
      while (head->kind() == PreferenceKind::kDual) head = head->children()[0];
      if (head->kind() != PreferenceKind::kPareto &&
          head->kind() != PreferenceKind::kPrioritized) {
        // Leaf head: its values split into `classes` layers; only the top
        // layer survives, and the ~distinct/classes distinct head values
        // within it are mutually incomparable groups (Def. 9 equality is
        // value equality) — the tail only discriminates inside a group.
        // Injective heads collapse to one group (the classic selective
        // chain head); an anti-chain head makes every distinct value its
        // own group (the Def. 16 grouping device).
        size_t distinct = LeafInputDistinct(stats, head, pool_rows);
        size_t classes = LeafClasses(head, distinct, LeafAllNumeric(stats, head));
        double groups = std::max(
            1.0, static_cast<double>(distinct) / static_cast<double>(classes));
        double m_top =
            std::max(1.0, static_cast<double>(m) / static_cast<double>(classes));
        size_t m_group =
            std::max<size_t>(1, static_cast<size_t>(m_top / groups));
        double w = groups * static_cast<double>(m_group) *
                   MaximaFraction(stats, kids[1], m_group, pool_rows);
        return std::min(1.0, w / static_cast<double>(m));
      }
      // Complex head: multiplicative fallback on the head's own maxima.
      double head_frac = MaximaFraction(stats, kids[0], m, pool_rows);
      size_t sub = std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(m) * head_frac));
      return head_frac * MaximaFraction(stats, kids[1], sub, pool_rows);
    }
    default: {
      size_t classes = LeafClasses(p, LeafInputDistinct(stats, p, pool_rows),
                                   LeafAllNumeric(stats, p));
      return 1.0 / static_cast<double>(std::max<size_t>(1, classes));
    }
  }
}

}  // namespace

double WindowClosedForm(size_t m, size_t eff_dims) {
  if (m <= 1) return static_cast<double>(m);
  if (eff_dims <= 1) return 1.0;
  const double ln_m = std::log(static_cast<double>(m));
  double w = 1.0;
  // (ln m)^(d-1) / (d-1)!, accumulated factor-by-factor so large d cannot
  // overflow before the clamp.
  for (size_t k = 1; k < eff_dims; ++k) {
    w *= ln_m / static_cast<double>(k);
    if (w >= static_cast<double>(m)) return static_cast<double>(m);
  }
  return std::max(1.0, std::min(w, static_cast<double>(m)));
}

// ---------------------------------------------------------------------------
// TableStats

const ColumnStats* TableStats::Column(const std::string& name) const {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return &columns[i];
  }
  return nullptr;
}

TableStats TableStats::Derive(const Relation& r,
                              const std::vector<std::string>& attrs) {
  if (attrs.empty()) {
    TableStatsBuilder builder(r);
    return builder.Snapshot();
  }
  // Restricted derivation: scan only the named columns.
  TableStats out;
  out.rows = r.size();
  std::vector<size_t> cols = r.ResolveColumns(attrs);
  out.names = attrs;
  out.columns.resize(attrs.size());
  std::vector<std::unordered_set<Value, ValueHash>> distinct(attrs.size());
  for (const Tuple& t : r.tuples()) {
    for (size_t i = 0; i < cols.size(); ++i) {
      const Value& v = t[cols[i]];
      ColumnStats& c = out.columns[i];
      if (v.is_null()) ++c.null_count;
      else if (ValueIsNan(v)) {
        // NaN != NaN under Value equality: inserting NaNs would chain
        // one bucket per row (quadratic) while the kernels collapse
        // them into one score class anyway — count, don't track.
        ++c.nan_count;
        continue;
      } else if (!v.is_numeric()) {
        ++c.non_numeric_count;
      }
      if (distinct[i].size() >= kDistinctCap) {
        c.distinct_saturated = true;
        continue;
      }
      distinct[i].insert(v);
    }
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    out.columns[i].distinct =
        distinct[i].size() + (out.columns[i].nan_count > 0 ? 1 : 0);
  }
  return out;
}

TableStatsBuilder::TableStatsBuilder(const Schema& schema) {
  stats_.names.reserve(schema.size());
  for (const Attribute& a : schema.attributes()) stats_.names.push_back(a.name);
  stats_.columns.resize(schema.size());
  distinct_.resize(schema.size());
}

TableStatsBuilder::TableStatsBuilder(const Relation& r)
    : TableStatsBuilder(r.schema()) {
  for (const Tuple& t : r.tuples()) AddRow(t);
}

void TableStatsBuilder::AddRow(const Tuple& row) {
  // Beyond the saturation cap the count freezes and the flag is set
  // (the real count is "at least the cap"); estimation then treats the
  // column as pool-scale cardinality.
  ++stats_.rows;
  for (size_t i = 0; i < stats_.columns.size() && i < row.size(); ++i) {
    const Value& v = row[i];
    ColumnStats& c = stats_.columns[i];
    if (v.is_null()) ++c.null_count;
    else if (ValueIsNan(v)) {
      // NaN != NaN under Value equality: one logical class, counted
      // once, never inserted (a NaN-heavy column would otherwise chain
      // one hash bucket per row).
      if (c.nan_count == 0) ++c.distinct;
      ++c.nan_count;
      continue;
    } else if (!v.is_numeric()) {
      ++c.non_numeric_count;
    }
    if (distinct_[i].size() >= kDistinctCap) {
      c.distinct_saturated = true;
      continue;
    }
    auto [it, inserted] = distinct_[i].insert(v);
    (void)it;
    if (inserted) ++c.distinct;
  }
}

TableStats TableStatsBuilder::Snapshot() const { return stats_; }

// ---------------------------------------------------------------------------
// TermStats

std::string TermStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu m=%zu d=%zu keys=%zu window~%.0f%s%s%s", input_rows,
                distinct_values, dims, table_keys, est_window,
                measured_window ? " (sampled)" : "",
                dc_exact ? " dc-exact" : "", chain_head ? " chain-head" : "");
  return buf;
}

TermStats EstimateTermStats(const TableStats& stats, const Schema& schema,
                            const PrefPtr& p, size_t pool_rows) {
  TermStats out;
  out.input_rows = pool_rows;
  out.compilable = ScoreTable::CompilableTerm(p);
  try {
    out.closure_keys =
        p->BindSortKeys(schema.Project(p->attributes())).has_value();
  } catch (const std::out_of_range&) {
    out.closure_keys = false;
  }

  std::vector<PrefPtr> leaves;
  CollectLeaves(p, &leaves);
  out.dims = std::max<size_t>(1, out.compilable ? leaves.size()
                                                : p->attributes().size());

  // Distinct projections: capped product of per-leaf distinct counts.
  double product = 1.0;
  bool all_injective = true;
  bool flat_pareto = true;
  {
    PrefPtr cur = p;
    while (cur->kind() == PreferenceKind::kDual) cur = cur->children()[0];
    // A single leaf counts as flat Pareto of one column.
    std::function<bool(const PrefPtr&)> no_prio = [&](const PrefPtr& q0) {
      PrefPtr q = q0;
      while (q->kind() == PreferenceKind::kDual) q = q->children()[0];
      if (q->kind() == PreferenceKind::kPrioritized) return false;
      if (q->kind() == PreferenceKind::kPareto) {
        for (const PrefPtr& child : q->children()) {
          if (!no_prio(child)) return false;
        }
      }
      return true;
    };
    flat_pareto = no_prio(cur);
  }
  for (const PrefPtr& leaf : leaves) {
    size_t distinct = LeafInputDistinct(stats, leaf, pool_rows);
    bool numeric = LeafAllNumeric(stats, leaf);
    product = std::min(product * static_cast<double>(std::max<size_t>(
                                     1, distinct)),
                       static_cast<double>(pool_rows) + 1.0);
    bool injective = (leaf->kind() == PreferenceKind::kLowest ||
                      leaf->kind() == PreferenceKind::kHighest) &&
                     numeric;
    all_injective = all_injective && injective;
  }
  out.distinct_values = std::max<size_t>(
      pool_rows == 0 ? 0 : 1,
      std::min<size_t>(pool_rows, static_cast<size_t>(product)));
  out.dc_exact = out.compilable && flat_pareto && all_injective;
  out.table_keys =
      out.compilable && ScoreTable::HasStaticSortKeys(p) ? 1 : 0;
  out.chain_head = PrioritizedChainHead(p);
  if (out.chain_head) {
    out.head_distinct = LeafInputDistinct(stats, p->children()[0], pool_rows);
  }
  out.est_window = std::max(
      1.0, static_cast<double>(out.distinct_values) *
               MaximaFraction(stats, p, out.distinct_values, pool_rows));
  return out;
}

TermStats MeasureTermStats(const ScoreTable& table, const PrefPtr& p,
                           size_t input_rows) {
  TermStats out;
  out.input_rows = input_rows;
  out.distinct_values = table.rows();
  out.dims = std::max<size_t>(1, table.cols());
  out.table_keys = table.num_sort_keys();
  out.compilable = true;
  out.dc_exact = table.CanDivideConquer();
  out.chain_head = PrioritizedChainHead(p);
  const std::vector<uint32_t>& distinct = table.column_distinct();
  if (out.chain_head && !distinct.empty()) {
    out.head_distinct =
        distinct[0] == 0 ? table.rows() : distinct[0];
  }

  const size_t m = table.rows();
  if (m < 4096) {
    // Small blocks finish in microseconds under any kernel; the closed
    // form is plenty and the probe (two sampled scans) would cost a
    // significant fraction of just running the query. Anti-chain leaves
    // are group multipliers, not skyline dimensions (dominance requires
    // equality on them); leaves align with columns in compile order.
    std::vector<PrefPtr> leaves;
    CollectLeaves(p, &leaves);
    size_t eff = 0;
    double groups = 1.0;
    for (size_t c = 0; c < distinct.size(); ++c) {
      const bool antichain = c < leaves.size() &&
                             leaves[c]->kind() == PreferenceKind::kAntiChain;
      const size_t classes = distinct[c] == 0 ? m : distinct[c];
      if (antichain) {
        groups *= static_cast<double>(std::max<size_t>(1, classes));
      } else if (classes > 1) {
        ++eff;
      }
    }
    groups = std::min(groups, static_cast<double>(std::max<size_t>(1, m)));
    const size_t m_group = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(m) / groups));
    out.est_window =
        std::min(static_cast<double>(m),
                 groups * WindowClosedForm(m_group, std::max<size_t>(1, eff)));
    return out;
  }

  // Two-point window probe: maxima of two nested samples fit the
  // Pareto-front growth exponent alpha in w(m) ~ m^alpha, which captures
  // the data's correlation regime (anti-correlated fronts grow near
  // linearly, independent ones polylogarithmically) — the feedback loop
  // ROADMAP calls "feeding measured window sizes back into
  // ChooseAlgorithm". Samples are *strided* across the whole block, not
  // prefixes: physically sorted input (a CSV ordered by one attribute)
  // would make a prefix a biased subset of the value distribution and
  // pin a mispredicted plan into the exec cache.
  const size_t s2 = std::min<size_t>(m, 1024);
  const size_t s1 = s2 / 2;
  auto count = [&table, m](size_t sample) {
    std::vector<size_t> rows;
    rows.reserve(sample);
    const double step = static_cast<double>(m) / static_cast<double>(sample);
    for (size_t i = 0; i < sample; ++i) {
      rows.push_back(
          std::min(m - 1, static_cast<size_t>(static_cast<double>(i) * step)));
    }
    std::vector<bool> maximal =
        table.MaximaSubset(BmoAlgorithm::kBlockNestedLoop, rows);
    return static_cast<double>(
        std::count(maximal.begin(), maximal.end(), true));
  };
  const double w1 = std::max(1.0, count(s1));
  const double w2 = std::max(1.0, count(s2));
  double alpha = std::log2(std::max(1.0, w2 / w1));
  alpha = std::max(0.0, std::min(1.0, alpha));
  out.est_window = std::min(
      static_cast<double>(m),
      w2 * std::pow(static_cast<double>(m) / static_cast<double>(s2), alpha));
  out.measured_window = true;
  return out;
}

}  // namespace prefdb
