// A reusable fixed-size worker pool — the bottom layer of the exec/
// subsystem. Parallel operators submit closures and block on the returned
// futures; a process-wide shared pool amortizes thread creation across
// queries.

#ifndef PREFDB_EXEC_THREAD_POOL_H_
#define PREFDB_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace prefdb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = hardware concurrency, at least 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues fn on the pool. The returned future rethrows any exception
  /// fn raises.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> out = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return out;
  }

  /// Splits [0, n) into at most size() balanced chunks of at least
  /// min_chunk elements, runs body(begin, end) for each on the pool and
  /// blocks until all chunks finish. Runs inline when one chunk suffices
  /// or when called from one of this pool's own workers (blocking there
  /// could deadlock the pool). Exceptions from body propagate to the
  /// caller.
  void ParallelFor(size_t n, size_t min_chunk,
                   const std::function<void(size_t, size_t)>& body);

  /// Same, but caps the chunk count at max_chunks (still at least
  /// min_chunk elements each) and passes the chunk index:
  /// body(chunk, begin, end). The building block for partition-parallel
  /// operators that need per-partition state.
  void ParallelForChunks(
      size_t n, size_t max_chunks, size_t min_chunk,
      const std::function<void(size_t, size_t, size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  /// Blocking on futures of tasks submitted to one's own pool can
  /// deadlock; parallel operators use this to fall back to inline
  /// execution.
  bool OnWorkerThread() const;

  /// The worker count a `num_threads` request resolves to (0 = hardware
  /// concurrency, always at least 1).
  static size_t ResolveThreads(size_t num_threads);

  /// Lazily constructed process-wide pool sized to hardware concurrency.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace prefdb

#endif  // PREFDB_EXEC_THREAD_POOL_H_
