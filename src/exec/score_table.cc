#include "exec/score_table.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"
#include "eval/quality.h"
#include "exec/hardware.h"
#include "relation/relation.h"

namespace prefdb {

namespace {

bool IsScoredLeafKind(PreferenceKind k) {
  switch (k) {
    case PreferenceKind::kAround:
    case PreferenceKind::kBetween:
    case PreferenceKind::kLowest:
    case PreferenceKind::kHighest:
    case PreferenceKind::kScore:
      return true;
    default:
      return false;
  }
}

bool IsLevelLeafKind(PreferenceKind k) {
  switch (k) {
    case PreferenceKind::kPos:
    case PreferenceKind::kNeg:
    case PreferenceKind::kPosNeg:
    case PreferenceKind::kPosPos:
    case PreferenceKind::kLayered:
      return true;
    default:
      return false;
  }
}

// Number of sort keys Preference::BindSortKeys would return, derived
// statically; nullopt when no keys are derivable. rank(F) requires its
// inputs to reduce to exactly one closure key (Def. 10 SCORE
// compatibility), so this mirrors the closure rules, not the wider
// score-table ones.
std::optional<size_t> ClosureKeyCount(const PrefPtr& p) {
  switch (p->kind()) {
    case PreferenceKind::kAntiChain:
      return 1;
    case PreferenceKind::kDual:
      return ClosureKeyCount(p->children()[0]);
    case PreferenceKind::kRankF: {
      for (const auto& in : p->children()) {
        auto n = ClosureKeyCount(in);
        if (!n || *n != 1) return std::nullopt;
      }
      return 1;
    }
    case PreferenceKind::kPareto: {
      auto kids = p->children();
      auto l = ClosureKeyCount(kids[0]);
      auto r = ClosureKeyCount(kids[1]);
      if (l && r && *l == 1 && *r == 1) return 1;
      return std::nullopt;
    }
    case PreferenceKind::kPrioritized: {
      auto kids = p->children();
      auto l = ClosureKeyCount(kids[0]);
      auto r = ClosureKeyCount(kids[1]);
      if (l && r) return *l + *r;
      return std::nullopt;
    }
    default:
      return IsScoredLeafKind(p->kind()) ? std::optional<size_t>(1)
                                         : std::nullopt;
  }
}

// A leaf already stripped of DUAL wrappers. All class checks are
// dynamic_casts, never kind-tag downcasts: subclasses defined outside
// core/ may share a kind without the expected layout and must fall back
// to the closure path (or, for level kinds, opt in via the
// BasePreference::IntrinsicLevelOf contract).
bool CompilableLeaf(const PrefPtr& p) {
  if (IsScoredLeafKind(p->kind())) {
    return dynamic_cast<const ScoredBasePreference*>(p.get()) != nullptr;
  }
  if (IsLevelLeafKind(p->kind())) {
    // Probe the level contract (all-or-none per class).
    const auto* base = dynamic_cast<const BasePreference*>(p.get());
    return base && base->IntrinsicLevelOf(Value()).has_value();
  }
  switch (p->kind()) {
    case PreferenceKind::kAntiChain:
      return true;
    case PreferenceKind::kExplicit: {
      // EXPLICIT dict-encodes as a level column only when the graph order
      // *is* its level order (precomputed at construction). Values
      // outside the graph sit below the deepest level and are consistent
      // automatically.
      const auto* e = dynamic_cast<const ExplicitPreference*>(p.get());
      return e && e->IsLevelOrder();
    }
    case PreferenceKind::kRankF: {
      if (!dynamic_cast<const RankPreference*>(p.get())) return false;
      for (const auto& in : p->children()) {
        auto n = ClosureKeyCount(in);
        if (!n || *n != 1) return false;
      }
      return true;
    }
    default:
      return false;
  }
}

bool CompilableRec(const PrefPtr& p0, bool dual) {
  PrefPtr p = p0;
  while (p->kind() == PreferenceKind::kDual) {
    dual = !dual;
    p = p->children()[0];
  }
  if (p->kind() == PreferenceKind::kPareto ||
      p->kind() == PreferenceKind::kPrioritized ||
      p->kind() == PreferenceKind::kIntersection ||
      p->kind() == PreferenceKind::kDisjointUnion) {
    // DUAL distributes over all four aggregations: over the accumulations
    // because equality per side is value equality (which dual preserves),
    // and over intersection/union because dual of a conjunction (resp.
    // disjunction) of orders is the conjunction (disjunction) of the
    // duals. So the order flip is pushed to the leaves at descriptor
    // build time.
    auto kids = p->children();
    return CompilableRec(kids[0], dual) && CompilableRec(kids[1], dual);
  }
  return CompilableLeaf(p);
}

// Key count of the *compiled* table (every compilable leaf yields one key).
std::optional<size_t> TableKeyCount(const PrefPtr& p0) {
  PrefPtr p = p0;
  while (p->kind() == PreferenceKind::kDual) p = p->children()[0];
  switch (p->kind()) {
    // Intersection keys like Pareto: x <(P<>Q) y implies both sides
    // strictly improve, so the summed single-column-set key strictly
    // improves too.
    case PreferenceKind::kPareto:
    case PreferenceKind::kIntersection: {
      auto kids = p->children();
      auto l = TableKeyCount(kids[0]);
      auto r = TableKeyCount(kids[1]);
      if (l && r && *l == 1 && *r == 1) return 1;
      return std::nullopt;
    }
    // Disjoint union derives no key: x <(P+Q) y needs only one side to
    // improve, and the other side's key may move the sum either way.
    case PreferenceKind::kDisjointUnion:
      return std::nullopt;
    case PreferenceKind::kPrioritized: {
      auto kids = p->children();
      auto l = TableKeyCount(kids[0]);
      auto r = TableKeyCount(kids[1]);
      if (l && r) return *l + *r;
      return std::nullopt;
    }
    default:
      return 1;
  }
}

size_t ResolveColumnOrThrow(const Schema& schema, const std::string& name) {
  auto idx = schema.IndexOf(name);
  if (!idx) {
    throw std::out_of_range("attribute '" + name + "' not found in schema " +
                            schema.ToString());
  }
  return *idx;
}

}  // namespace

bool ScoreTable::CompilableTerm(const PrefPtr& p) {
  return CompilableRec(p, false);
}

bool ScoreTable::HasStaticSortKeys(const PrefPtr& p) {
  return CompilableTerm(p) && TableKeyCount(p).has_value();
}

// ---------------------------------------------------------------------------
// Compilation

// Per-column materialization state, assembled row-major afterwards.
struct ScoreTable::ColumnData {
  std::vector<double> scores;
  std::vector<uint32_t> ids;
  bool use_ids = false;
  uint32_t classes = 0;  // equality classes (0 = injective fast path)
};

// Detects score ties across distinct equality classes (and NaN scores,
// which compare unequal to themselves): such columns need the id test.
// Sort-based: one double sort beats per-row hashing by a wide margin.
void ScoreTable::DetectUseIds(ColumnData& col) {
  const size_t n = col.scores.size();
  for (double s : col.scores) {
    if (std::isnan(s)) {
      col.use_ids = true;
      return;  // also keeps NaN out of the sort comparator below
    }
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&col](uint32_t a, uint32_t b) {
    return col.scores[a] < col.scores[b];
  });
  for (size_t i = 1; i < n; ++i) {
    if (exec::ScoreEqNanFree(col.scores[order[i - 1]],
                             col.scores[order[i]]) &&
        col.ids[order[i - 1]] != col.ids[order[i]]) {
      col.use_ids = true;
      return;
    }
  }
}

void ScoreTable::Assemble(std::vector<ColumnData>&& columns, size_t count,
                          bool has_pareto, bool has_prio, bool has_other) {
  cols_ = columns.size();
  prog_.cols = cols_;
  // Intersection/union nodes have no flat-mode shortcut, so any such node
  // anywhere in the descriptor forces the general node program.
  prog_.mode =
      has_other
          ? simd::DominanceProgram::Mode::kGeneral
          : has_prio ? (has_pareto ? simd::DominanceProgram::Mode::kGeneral
                                   : simd::DominanceProgram::Mode::kFlatLex)
                     : simd::DominanceProgram::Mode::kFlatPareto;

  // Assemble the row-major matrix.
  scores_.resize(count * cols_);
  ids_.resize(count * cols_);
  prog_.use_ids.resize(cols_);
  col_distinct_.resize(cols_);
  for (size_t c = 0; c < cols_; ++c) {
    prog_.use_ids[c] = columns[c].use_ids ? 1 : 0;
    col_distinct_[c] = columns[c].classes;
    for (size_t r = 0; r < count; ++r) {
      scores_[r * cols_ + c] = columns[c].scores[r];
      ids_[r * cols_ + c] = columns[c].ids[r];
    }
  }

  // Sort keys from the descriptor: leaf -> its column; prioritized ->
  // concatenation; Pareto and intersection -> the sum of two
  // single-column-set keys (both demand a strict improvement on each
  // side, so the sum strictly improves); union -> none (one-sided strict
  // improvement leaves the sum unordered).
  std::function<std::optional<std::vector<std::vector<int>>>(int)> keys_of =
      [this, &keys_of](int n) -> std::optional<std::vector<std::vector<int>>> {
    const simd::DominanceProgram::Node& node = prog_.nodes[n];
    if (node.kind == simd::DominanceProgram::Node::Kind::kLeaf) {
      return std::vector<std::vector<int>>{{node.a}};
    }
    if (node.kind == simd::DominanceProgram::Node::Kind::kUnion) {
      return std::nullopt;
    }
    auto l = keys_of(node.a);
    auto r = keys_of(node.b);
    if (!l || !r) return std::nullopt;
    if (node.kind == simd::DominanceProgram::Node::Kind::kPrioritized) {
      for (auto& k : *r) l->push_back(std::move(k));
      return l;
    }
    if (l->size() != 1 || r->size() != 1) return std::nullopt;
    for (int c : (*r)[0]) (*l)[0].push_back(c);
    return l;
  };
  if (auto keys = keys_of(prog_.root)) {
    sort_keys_ = std::move(*keys);
  }
}

std::optional<ScoreTable> ScoreTable::Compile(const PrefPtr& p,
                                              const Schema& proj_schema,
                                              const Tuple* values,
                                              size_t count) {
  if (!CompilableTerm(p)) return std::nullopt;

  ScoreTable table;
  table.rows_ = count;
  std::vector<ColumnData> columns;
  bool has_pareto = false;
  bool has_prio = false;
  bool has_other = false;  // intersection/union: forces kGeneral

  auto finish_column = [&columns]() { DetectUseIds(columns.back()); };

  // Materializes a leaf: equality-class ids by sorting row indices under a
  // total order whose ties coincide with value equality (Value::operator<
  // resp. Tuple::operator<), scores computed once per run. O(m log m)
  // cheap comparisons instead of per-row Value hashing.
  auto build_leaf = [&](const std::function<bool(size_t, size_t)>& row_less,
                        const std::function<bool(size_t, size_t)>& row_eq,
                        const std::function<double(size_t)>& score_of_row) {
    columns.emplace_back();
    ColumnData& out = columns.back();
    out.scores.resize(count);
    out.ids.resize(count);
    std::vector<uint32_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), row_less);
    uint32_t next_id = 0;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0 && row_eq(order[i - 1], order[i])) {
        out.ids[order[i]] = out.ids[order[i - 1]];
        out.scores[order[i]] = out.scores[order[i - 1]];
      } else {
        out.ids[order[i]] = next_id++;
        out.scores[order[i]] = score_of_row(order[i]);
      }
    }
    out.classes = next_id;
    finish_column();
    return static_cast<int>(columns.size() - 1);
  };

  // NaN data values break Value::operator<'s strict weak ordering (and
  // are each their own equality class while tying against everything), so
  // such columns take the hash-dict path instead of the sort path.
  auto value_is_nan = [](const Value& v) {
    return v.is_double() && std::isnan(v.as_double());
  };

  auto build_value_leaf =
      [&](size_t col, const std::function<double(const Value&)>& score_of) {
        bool has_nan_value = false;
        bool all_numeric = true;
        for (size_t r = 0; r < count; ++r) {
          const Value& v = values[r][col];
          if (value_is_nan(v)) {
            has_nan_value = true;
            break;
          }
          all_numeric = all_numeric && v.is_numeric();
        }
        if (all_numeric && !has_nan_value) {
          // Numeric fast path: one widened-double gather, then the sort
          // runs over raw doubles (numeric equality == value equality by
          // the int/double widening rule of Value::operator==).
          std::vector<double> nums(count);
          for (size_t r = 0; r < count; ++r) {
            nums[r] = *values[r][col].numeric();
          }
          return build_leaf(
              [&nums](size_t a, size_t b) { return nums[a] < nums[b]; },
              [&nums](size_t a, size_t b) {
                return exec::ScoreEqNanFree(nums[a], nums[b]);
              },
              [values, col, &score_of](size_t r) {
                return score_of(values[r][col]);
              });
        }
        if (has_nan_value) {
          columns.emplace_back();
          ColumnData& out = columns.back();
          out.scores.resize(count);
          out.ids.resize(count);
          std::unordered_map<Value, uint32_t, ValueHash> dict;
          std::vector<double> score_of_id;
          for (size_t r = 0; r < count; ++r) {
            const Value& v = values[r][col];
            auto [it, inserted] =
                dict.emplace(v, static_cast<uint32_t>(dict.size()));
            if (inserted) score_of_id.push_back(score_of(v));
            out.ids[r] = it->second;
            out.scores[r] = score_of_id[it->second];
          }
          out.classes = static_cast<uint32_t>(dict.size());
          finish_column();
          return static_cast<int>(columns.size() - 1);
        }
        return build_leaf(
            [values, col](size_t a, size_t b) {
              return values[a][col] < values[b][col];
            },
            [values, col](size_t a, size_t b) {
              return values[a][col] == values[b][col];
            },
            [values, col, &score_of](size_t r) {
              return score_of(values[r][col]);
            });
      };

  // Multi-attribute leaves (anti-chains, rank(F)): equality classes are
  // value combinations. Per-run score evaluation is sound because the
  // equality set is the leaf's full attribute union, which is everything
  // the score may read.
  auto build_tuple_leaf =
      [&](const std::vector<size_t>& cols,
          const std::function<double(const Tuple&)>& score_of_row) {
        bool has_nan_value = false;
        for (size_t r = 0; r < count && !has_nan_value; ++r) {
          for (size_t c : cols) {
            if (value_is_nan(values[r][c])) {
              has_nan_value = true;
              break;
            }
          }
        }
        if (has_nan_value) {
          columns.emplace_back();
          ColumnData& out = columns.back();
          out.scores.resize(count);
          out.ids.resize(count);
          std::unordered_map<Tuple, uint32_t, TupleHash> dict;
          for (size_t r = 0; r < count; ++r) {
            Tuple proj = values[r].Project(cols);
            auto [it, inserted] = dict.emplace(
                std::move(proj), static_cast<uint32_t>(dict.size()));
            (void)inserted;
            out.ids[r] = it->second;
            out.scores[r] = score_of_row(values[r]);
          }
          out.classes = static_cast<uint32_t>(dict.size());
          finish_column();
          return static_cast<int>(columns.size() - 1);
        }
        auto cmp_lt = [values, &cols](size_t a, size_t b) {
          for (size_t c : cols) {
            if (values[a][c] < values[b][c]) return true;
            if (values[b][c] < values[a][c]) return false;
          }
          return false;
        };
        auto cmp_eq = [values, &cols](size_t a, size_t b) {
          for (size_t c : cols) {
            if (values[a][c] != values[b][c]) return false;
          }
          return true;
        };
        return build_leaf(cmp_lt, cmp_eq, [values, &score_of_row](size_t r) {
          return score_of_row(values[r]);
        });
      };

  // Recursive descriptor build; returns the node index.
  std::function<int(const PrefPtr&, bool)> build = [&](const PrefPtr& p0,
                                                       bool dual) -> int {
    PrefPtr cur = p0;
    while (cur->kind() == PreferenceKind::kDual) {
      dual = !dual;
      cur = cur->children()[0];
    }
    if (cur->kind() == PreferenceKind::kPareto ||
        cur->kind() == PreferenceKind::kPrioritized ||
        cur->kind() == PreferenceKind::kIntersection ||
        cur->kind() == PreferenceKind::kDisjointUnion) {
      // A surrounding DUAL distributes over every aggregation here: flip
      // the order of every leaf below instead (score negation).
      auto kids = cur->children();
      int l = build(kids[0], dual);
      int r = build(kids[1], dual);
      simd::DominanceProgram::Node node;
      switch (cur->kind()) {
        case PreferenceKind::kPareto:
          node.kind = simd::DominanceProgram::Node::Kind::kPareto;
          has_pareto = true;
          break;
        case PreferenceKind::kPrioritized:
          node.kind = simd::DominanceProgram::Node::Kind::kPrioritized;
          has_prio = true;
          break;
        case PreferenceKind::kIntersection:
          node.kind = simd::DominanceProgram::Node::Kind::kIntersect;
          has_other = true;
          break;
        default:
          node.kind = simd::DominanceProgram::Node::Kind::kUnion;
          has_other = true;
          break;
      }
      node.a = l;
      node.b = r;
      table.prog_.nodes.push_back(node);
      return static_cast<int>(table.prog_.nodes.size() - 1);
    }

    const double sign = dual ? -1.0 : 1.0;
    int col = -1;
    if (IsScoredLeafKind(cur->kind())) {
      size_t c = ResolveColumnOrThrow(proj_schema, cur->attributes()[0]);
      const auto* scored = dynamic_cast<const ScoredBasePreference*>(cur.get());
      bool plain_numeric = true;  // all numeric, no NaN
      for (size_t r = 0; r < count && plain_numeric; ++r) {
        const Value& v = values[r][c];
        plain_numeric = v.is_numeric() && !value_is_nan(v);
      }
      if (plain_numeric && (cur->kind() == PreferenceKind::kLowest ||
                            cur->kind() == PreferenceKind::kHighest)) {
        // LOWEST/HIGHEST scores are strictly monotone in the value, so on
        // an all-numeric column score equality *is* value equality: no
        // sort, no equality ids, column injective by construction.
        columns.emplace_back();
        ColumnData& out = columns.back();
        out.scores.resize(count);
        out.ids.assign(count, 0);
        for (size_t r = 0; r < count; ++r) {
          out.scores[r] = sign * scored->ScoreOf(values[r][c]);
        }
        col = static_cast<int>(columns.size() - 1);
      } else {
        col = build_value_leaf(c, [scored, sign](const Value& v) {
          return sign * scored->ScoreOf(v);
        });
      }
    } else if (IsLevelLeafKind(cur->kind()) ||
               cur->kind() == PreferenceKind::kExplicit) {
      size_t c = ResolveColumnOrThrow(proj_schema, cur->attributes()[0]);
      const Preference* raw = cur.get();
      // Lower level = better, so the uniform "higher score wins" view
      // negates the level.
      col = build_value_leaf(c, [raw, sign](const Value& v) {
        return -sign * static_cast<double>(IntrinsicLevel(*raw, v));
      });
    } else if (cur->kind() == PreferenceKind::kAntiChain) {
      std::vector<size_t> cols;
      for (const auto& name : cur->attributes()) {
        cols.push_back(ResolveColumnOrThrow(proj_schema, name));
      }
      col = build_tuple_leaf(cols, [](const Tuple&) { return 0.0; });
    } else {  // kRankF (guaranteed by CompilableTerm)
      std::vector<size_t> cols;
      for (const auto& name : cur->attributes()) {
        cols.push_back(ResolveColumnOrThrow(proj_schema, name));
      }
      ScoreFn utility =
          dynamic_cast<const RankPreference*>(cur.get())->BindUtility(
              proj_schema);
      col = build_tuple_leaf(cols, [utility, sign](const Tuple& t) {
        return sign * utility(t);
      });
    }
    simd::DominanceProgram::Node node;
    node.kind = simd::DominanceProgram::Node::Kind::kLeaf;
    node.a = col;
    table.prog_.nodes.push_back(node);
    return static_cast<int>(table.prog_.nodes.size() - 1);
  };

  table.prog_.root = build(p, false);
  table.Assemble(std::move(columns), count, has_pareto, has_prio, has_other);
  return table;
}

// ---------------------------------------------------------------------------
// Zero-copy (columnar) compilation

namespace {

bool ColumnarNumericColumn(const Relation& r, const std::string& name) {
  auto idx = r.schema().IndexOf(name);
  return idx && r.store().column(*idx).NumericNanFree();
}

bool ColumnarRec(const PrefPtr& p0, const Relation& r) {
  PrefPtr p = p0;
  while (p->kind() == PreferenceKind::kDual) p = p->children()[0];
  if (p->kind() == PreferenceKind::kPareto ||
      p->kind() == PreferenceKind::kPrioritized ||
      p->kind() == PreferenceKind::kIntersection ||
      p->kind() == PreferenceKind::kDisjointUnion) {
    auto kids = p->children();
    return ColumnarRec(kids[0], r) && ColumnarRec(kids[1], r);
  }
  if (IsScoredLeafKind(p->kind())) {
    return dynamic_cast<const ScoredBasePreference*>(p.get()) != nullptr &&
           ColumnarNumericColumn(r, p->attributes()[0]);
  }
  if (p->kind() == PreferenceKind::kRankF) {
    if (!CompilableLeaf(p)) return false;
    for (const auto& name : p->attributes()) {
      if (!ColumnarNumericColumn(r, name)) return false;
    }
    return true;
  }
  return false;
}

}  // namespace

bool ScoreTable::CompilableColumnar(const PrefPtr& p, const Relation& r) {
  return ColumnarRec(p, r);
}

std::optional<ScoreTable> ScoreTable::CompileColumnar(
    const PrefPtr& p, const Relation& r, const std::vector<size_t>* pool) {
  if (!CompilableColumnar(p, r)) return std::nullopt;
  const ColumnStore& store = r.store();
  const size_t count = pool ? pool->size() : r.size();

  ScoreTable table;
  table.rows_ = count;
  std::vector<ColumnData> columns;
  bool has_pareto = false;
  bool has_prio = false;
  bool has_other = false;  // intersection/union: forces kGeneral

  // Logical row i -> physical row in the column buffers. Identity when
  // compiling a flat store without a pool — the common cold path — so the
  // leaf loops read the column buffers with zero indirection.
  std::vector<uint32_t> phys;
  const bool identity = pool == nullptr && !store.IsView();
  if (!identity) {
    phys.resize(count);
    for (size_t i = 0; i < count; ++i) {
      phys[i] =
          static_cast<uint32_t>(store.PhysicalRow(pool ? (*pool)[i] : i));
    }
  }

  // Pool-ordered widened doubles of one column: borrows the column buffer
  // outright in the identity case, gathers once otherwise.
  std::vector<std::vector<double>> scratch;  // keeps gathered copies alive
  auto leaf_nums = [&](size_t c) -> const double* {
    const std::vector<double>& nums = store.column(c).nums;
    if (identity) return nums.data();
    scratch.emplace_back(count);
    std::vector<double>& out = scratch.back();
    for (size_t i = 0; i < count; ++i) out[i] = nums[phys[i]];
    return out.data();
  };

  // Sort-based id assignment over a raw double array; NaN-free by the
  // eligibility check, so double equality is exactly value equality.
  auto build_numeric_leaf = [&](const double* nums,
                                const std::function<double(double)>&
                                    score_of) {
    columns.emplace_back();
    ColumnData& out = columns.back();
    out.scores.resize(count);
    out.ids.resize(count);
    std::vector<uint32_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [nums](uint32_t a, uint32_t b) { return nums[a] < nums[b]; });
    uint32_t next_id = 0;
    for (size_t i = 0; i < count; ++i) {
      if (i > 0 &&
          exec::ScoreEqNanFree(nums[order[i - 1]], nums[order[i]])) {
        out.ids[order[i]] = out.ids[order[i - 1]];
        out.scores[order[i]] = out.scores[order[i - 1]];
      } else {
        out.ids[order[i]] = next_id++;
        out.scores[order[i]] = score_of(nums[order[i]]);
      }
    }
    out.classes = next_id;
    DetectUseIds(out);
    return static_cast<int>(columns.size() - 1);
  };

  // rank(F): equality classes are the value combinations over the leaf's
  // columns (lexicographic double sort); the utility reads rows through a
  // Tuple, so one full-arity scratch tuple is reused, mutating only the
  // leaf's cells — once per equality class, not per row.
  auto build_rank_leaf = [&](const std::vector<size_t>& cols,
                             const RankPreference* rank, double sign) {
    std::vector<const double*> ptrs;
    ptrs.reserve(cols.size());
    for (size_t c : cols) ptrs.push_back(leaf_nums(c));
    ScoreFn utility = rank->BindUtility(r.schema());
    Tuple scratch{std::vector<Value>(r.schema().size())};
    columns.emplace_back();
    ColumnData& out = columns.back();
    out.scores.resize(count);
    out.ids.resize(count);
    std::vector<uint32_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&ptrs](uint32_t a, uint32_t b) {
                for (const double* col : ptrs) {
                  if (col[a] < col[b]) return true;
                  if (col[b] < col[a]) return false;
                }
                return false;
              });
    auto rows_eq = [&ptrs](uint32_t a, uint32_t b) {
      for (const double* col : ptrs) {
        if (!exec::ScoreEqNanFree(col[a], col[b])) return false;
      }
      return true;
    };
    uint32_t next_id = 0;
    for (size_t i = 0; i < count; ++i) {
      const uint32_t row = order[i];
      if (i > 0 && rows_eq(order[i - 1], row)) {
        out.ids[row] = out.ids[order[i - 1]];
        out.scores[row] = out.scores[order[i - 1]];
      } else {
        out.ids[row] = next_id++;
        for (size_t k = 0; k < cols.size(); ++k) {
          scratch[cols[k]] = Value(ptrs[k][row]);
        }
        out.scores[row] = sign * utility(scratch);
      }
    }
    out.classes = next_id;
    DetectUseIds(out);
    return static_cast<int>(columns.size() - 1);
  };

  std::function<int(const PrefPtr&, bool)> build = [&](const PrefPtr& p0,
                                                       bool dual) -> int {
    PrefPtr cur = p0;
    while (cur->kind() == PreferenceKind::kDual) {
      dual = !dual;
      cur = cur->children()[0];
    }
    if (cur->kind() == PreferenceKind::kPareto ||
        cur->kind() == PreferenceKind::kPrioritized ||
        cur->kind() == PreferenceKind::kIntersection ||
        cur->kind() == PreferenceKind::kDisjointUnion) {
      auto kids = cur->children();
      int l = build(kids[0], dual);
      int rr = build(kids[1], dual);
      simd::DominanceProgram::Node node;
      switch (cur->kind()) {
        case PreferenceKind::kPareto:
          node.kind = simd::DominanceProgram::Node::Kind::kPareto;
          has_pareto = true;
          break;
        case PreferenceKind::kPrioritized:
          node.kind = simd::DominanceProgram::Node::Kind::kPrioritized;
          has_prio = true;
          break;
        case PreferenceKind::kIntersection:
          node.kind = simd::DominanceProgram::Node::Kind::kIntersect;
          has_other = true;
          break;
        default:
          node.kind = simd::DominanceProgram::Node::Kind::kUnion;
          has_other = true;
          break;
      }
      node.a = l;
      node.b = rr;
      table.prog_.nodes.push_back(node);
      return static_cast<int>(table.prog_.nodes.size() - 1);
    }

    const double sign = dual ? -1.0 : 1.0;
    int col = -1;
    if (IsScoredLeafKind(cur->kind())) {
      size_t c = ResolveColumnOrThrow(r.schema(), cur->attributes()[0]);
      const auto* scored =
          dynamic_cast<const ScoredBasePreference*>(cur.get());
      if (cur->kind() == PreferenceKind::kLowest ||
          cur->kind() == PreferenceKind::kHighest) {
        // Strictly monotone score on an all-numeric column: injective by
        // construction — a straight fill off the column buffer, no sort,
        // no ids.
        const std::vector<double>& nums = store.column(c).nums;
        columns.emplace_back();
        ColumnData& out = columns.back();
        out.scores.resize(count);
        out.ids.assign(count, 0);
        if (identity) {
          for (size_t i = 0; i < count; ++i) {
            out.scores[i] = sign * scored->ScoreOf(Value(nums[i]));
          }
        } else {
          for (size_t i = 0; i < count; ++i) {
            out.scores[i] = sign * scored->ScoreOf(Value(nums[phys[i]]));
          }
        }
        col = static_cast<int>(columns.size() - 1);
      } else {
        col = build_numeric_leaf(leaf_nums(c), [scored, sign](double v) {
          return sign * scored->ScoreOf(Value(v));
        });
      }
    } else {  // kRankF (guaranteed by CompilableColumnar)
      std::vector<size_t> cols;
      for (const auto& name : cur->attributes()) {
        cols.push_back(ResolveColumnOrThrow(r.schema(), name));
      }
      col = build_rank_leaf(
          cols, dynamic_cast<const RankPreference*>(cur.get()), sign);
    }
    simd::DominanceProgram::Node node;
    node.kind = simd::DominanceProgram::Node::Kind::kLeaf;
    node.a = col;
    table.prog_.nodes.push_back(node);
    return static_cast<int>(table.prog_.nodes.size() - 1);
  };

  table.prog_.root = build(p, false);
  table.Assemble(std::move(columns), count, has_pareto, has_prio, has_other);
  return table;
}

// ---------------------------------------------------------------------------
// Dominance tests

bool ScoreTable::ParetoLess(size_t x, size_t y) const {
  const double* sx = Row(x);
  const double* sy = Row(y);
  const uint32_t* ix = Ids(x);
  const uint32_t* iy = Ids(y);
  bool strict = false;
  for (size_t c = 0; c < cols_; ++c) {
    if (sx[c] < sy[c]) {
      strict = true;
      continue;
    }
    if (!ColumnEq(c, sx, sy, ix, iy)) return false;
  }
  return strict;
}

bool ScoreTable::LexLess(size_t x, size_t y) const {
  const double* sx = Row(x);
  const double* sy = Row(y);
  const uint32_t* ix = Ids(x);
  const uint32_t* iy = Ids(y);
  for (size_t c = 0; c < cols_; ++c) {
    if (ColumnEq(c, sx, sy, ix, iy)) continue;
    return sx[c] < sy[c];
  }
  return false;
}

std::pair<bool, bool> ScoreTable::EvalNode(int n, const double* sx,
                                           const double* sy,
                                           const uint32_t* ix,
                                           const uint32_t* iy) const {
  const simd::DominanceProgram::Node& node = prog_.nodes[n];
  if (node.kind == simd::DominanceProgram::Node::Kind::kLeaf) {
    size_t c = static_cast<size_t>(node.a);
    return {sx[c] < sy[c], ColumnEq(c, sx, sy, ix, iy)};
  }
  auto [l1, e1] = EvalNode(node.a, sx, sy, ix, iy);
  auto [l2, e2] = EvalNode(node.b, sx, sy, ix, iy);
  if (node.kind == simd::DominanceProgram::Node::Kind::kPareto) {
    return {(l1 && (l2 || e2)) || (l2 && (l1 || e1)), e1 && e2};
  }
  if (node.kind == simd::DominanceProgram::Node::Kind::kIntersect) {
    return {l1 && l2, e1 && e2};
  }
  if (node.kind == simd::DominanceProgram::Node::Kind::kUnion) {
    return {l1 || l2, e1 && e2};
  }
  return {l1 || (e1 && l2), e1 && e2};
}

bool ScoreTable::GeneralLess(size_t x, size_t y) const {
  return EvalNode(prog_.root, Row(x), Row(y), Ids(x), Ids(y)).first;
}

bool ScoreTable::Less(size_t x, size_t y) const {
  switch (prog_.mode) {
    case simd::DominanceProgram::Mode::kFlatPareto:
      return ParetoLess(x, y);
    case simd::DominanceProgram::Mode::kFlatLex:
      return LexLess(x, y);
    case simd::DominanceProgram::Mode::kGeneral:
      return GeneralLess(x, y);
  }
  return false;
}

size_t ScoreTable::FindDominator(size_t x,
                                 const std::vector<size_t>& rows) const {
  for (size_t r : rows) {
    if (r != x && Less(x, r)) return r;
  }
  return static_cast<size_t>(-1);
}

bool ScoreTable::CanDivideConquer() const {
  if (prog_.mode != simd::DominanceProgram::Mode::kFlatPareto) return false;
  for (uint8_t u : prog_.use_ids) {
    if (u) return false;
  }
  return true;
}

BmoAlgorithm ScoreTable::ResolveAlgorithm() const {
  if (CanDivideConquer()) return BmoAlgorithm::kDivideConquer;
  if (HasSortKeys()) return BmoAlgorithm::kSortFilter;
  return BmoAlgorithm::kBlockNestedLoop;
}

BmoAlgorithm ScoreTable::ResolveFor(BmoAlgorithm algo,
                                    const simd::KernelOps* ops) const {
  if (algo == BmoAlgorithm::kAuto) {
    algo = ResolveAlgorithm();
    // With the batch kernels, the tiled BNL window beats the KLP75
    // recursion at every measured size (see ChooseAlgorithm).
    if (algo == BmoAlgorithm::kDivideConquer && ops != nullptr) {
      algo = BmoAlgorithm::kBlockNestedLoop;
    }
  }
  if (algo == BmoAlgorithm::kSortFilter && !HasSortKeys()) {
    algo = BmoAlgorithm::kBlockNestedLoop;
  }
  if (algo == BmoAlgorithm::kDivideConquer && !CanDivideConquer()) {
    algo = BmoAlgorithm::kBlockNestedLoop;
  }
  return algo;
}

// ---------------------------------------------------------------------------
// Kernels. Each runs over an explicit row-index list so contiguous
// partitions and merge candidate sets share one code path; `less` is a
// mode-specialized predicate over global row indices, inlined per
// instantiation.

namespace {

template <typename LessPred>
std::vector<bool> NaiveKernel(const std::vector<size_t>& rows,
                              const LessPred& less) {
  const size_t m = rows.size();
  std::vector<bool> maximal(m, true);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i != j && less(rows[i], rows[j])) {
        maximal[i] = false;
        break;
      }
    }
  }
  return maximal;
}

template <typename LessPred>
std::vector<bool> BnlKernel(const std::vector<size_t>& rows,
                            const LessPred& less) {
  const size_t m = rows.size();
  std::vector<bool> maximal(m, false);
  std::vector<size_t> window;  // positions into `rows`
  for (size_t i = 0; i < m; ++i) {
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      size_t cand = window[w];
      if (!dominated && less(rows[i], rows[cand])) {
        dominated = true;
        // The rest of the window cannot be dominated by i (asymmetry +
        // transitivity), keep everything from here on.
        for (; w < window.size(); ++w) window[keep++] = window[w];
        break;
      }
      if (less(rows[cand], rows[i])) continue;  // evict cand
      window[keep++] = cand;
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }
  for (size_t idx : window) maximal[idx] = true;
  return maximal;
}

}  // namespace

double ScoreTable::SortKeyValue(size_t row, size_t key) const {
  double sum = 0.0;
  const double* s = Row(row);
  for (int c : sort_keys_[key]) sum += s[c];
  return sum;
}

size_t ScoreTable::ResolveTileRows(size_t requested) const {
  if (requested != 0) return std::max(requested, simd::kLanes);
  // Auto: size the tile so its local window (column-major scores + ids +
  // payloads) stays L2-resident, using the cache size detected at
  // runtime (exec/hardware.h; falls back to the tuned 256KiB constant),
  // with bounds that keep tiles worthwhile on narrow and wide tables
  // alike.
  const size_t tile_bytes = BnlTileBudgetBytes();
  const size_t row_bytes =
      cols_ * (sizeof(double) + sizeof(uint32_t)) + sizeof(size_t);
  const size_t tile = tile_bytes / std::max<size_t>(1, row_bytes);
  return std::min<size_t>(16384, std::max<size_t>(1024, tile));
}

std::vector<bool> ScoreTable::BnlBatch(const simd::KernelOps& ops,
                                       const std::vector<size_t>& rows,
                                       size_t tile_rows) const {
  const size_t m = rows.size();
  std::vector<bool> maximal(m, false);
  simd::RowBlock window(cols_);       // global antichain of survivors
  simd::RowBlock tile_window(cols_);  // per-tile local maxima
  std::vector<uint64_t> evict;
  std::vector<uint64_t> merge_evict;
  std::vector<size_t> survivors;
  auto words_for = [](size_t n) { return (n + 63) / 64; };
  // One BNL step of candidate row `pos` against `win`: true iff it
  // survives (evicting what it dominates). A dominated candidate never
  // dominates a window entry (antichain + transitivity), so the
  // early-out scan is exact.
  auto step = [&](simd::RowBlock& win, size_t pos) {
    evict.resize(words_for(win.size()));
    if (ops.scan(prog_, Row(rows[pos]), Ids(rows[pos]), win, evict.data())) {
      return false;
    }
    bool any = false;
    for (uint64_t w : evict) any = any || w != 0;
    if (any) win.Evict(evict.data());
    win.Append(Row(rows[pos]), Ids(rows[pos]), pos);
    return true;
  };
  size_t i = 0;
  while (i < m) {
    if (window.size() < tile_rows) {
      // Window still cache-resident: classic streaming BNL.
      step(window, i++);
      continue;
    }
    // The window outgrew the tile budget: reduce the next tile to its
    // local maxima entirely in cache, then antichain-merge the few
    // survivors into the big window — one window pass per survivor
    // instead of one per candidate.
    const size_t t1 = std::min(m, i + tile_rows);
    tile_window.Clear();
    for (; i < t1; ++i) step(tile_window, i);
    // Merge: every tile survivor scans the pre-merge global window once.
    // Order-independent: a global entry that dominates a survivor cannot
    // itself be dominated by another survivor (it would transitively
    // dominate a member of the tile's antichain).
    merge_evict.assign(words_for(window.size()), 0);
    survivors.clear();
    for (size_t w = 0; w < tile_window.size(); ++w) {
      const size_t pos = tile_window.payload(w);
      evict.resize(words_for(window.size()));
      if (ops.scan(prog_, Row(rows[pos]), Ids(rows[pos]), window,
                   evict.data())) {
        continue;
      }
      for (size_t k = 0; k < evict.size(); ++k) merge_evict[k] |= evict[k];
      survivors.push_back(pos);
    }
    bool any = false;
    for (uint64_t w : merge_evict) any = any || w != 0;
    if (any) window.Evict(merge_evict.data());
    for (size_t pos : survivors) {
      window.Append(Row(rows[pos]), Ids(rows[pos]), pos);
    }
  }
  for (size_t w = 0; w < window.size(); ++w) maximal[window.payload(w)] = true;
  return maximal;
}

std::vector<bool> ScoreTable::MaximaSubset(BmoAlgorithm algo,
                                           const std::vector<size_t>& rows,
                                           const PhysicalPlan& plan) const {
  const simd::KernelOps* ops = simd::ResolveKernel(plan.simd);
  algo = ResolveFor(algo, ops);

  const size_t m = rows.size();
  if (algo == BmoAlgorithm::kDivideConquer) {
    // Gather the candidate rows into one contiguous matrix (a single
    // allocation) and run the flat KLP75 kernel.
    std::vector<double> flat(m * cols_);
    for (size_t i = 0; i < m; ++i) {
      const double* s = Row(rows[i]);
      std::copy(s, s + cols_, flat.begin() + i * cols_);
    }
    return MaximaDivideConquerFlat(flat.data(), m, cols_, cols_, ops);
  }

  if (algo == BmoAlgorithm::kSortFilter) {
    // Presort descending by key vectors, then a one-sided window scan.
    // Sound only under strict key compatibility (x <P y => keys(x) lex <
    // keys(y)), which finite keys guarantee; a NaN or +/-inf key value
    // (unscorable values, -inf-absorbed Pareto sums that tie although a
    // component is strictly better) voids it, so such blocks degrade to
    // the exact BNL window below.
    const size_t nk = sort_keys_.size();
    std::vector<double> keys(m * nk);
    bool finite = true;
    for (size_t i = 0; i < m && finite; ++i) {
      for (size_t k = 0; k < nk; ++k) {
        double v = SortKeyValue(rows[i], k);
        if (!std::isfinite(v)) {
          finite = false;
          break;
        }
        keys[i * nk + k] = v;
      }
    }
    if (finite) {
      std::vector<uint32_t> order(m);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(),
                [&keys, nk](uint32_t a, uint32_t b) {
                  const double* ka = keys.data() + a * nk;
                  const double* kb = keys.data() + b * nk;
                  for (size_t k = 0; k < nk; ++k) {
                    // Keys were finiteness-checked above (`finite`).
                    if (exec::ScoreNeqNanFree(ka[k], kb[k])) {
                      return ka[k] > kb[k];
                    }
                  }
                  return false;
                });
      std::vector<bool> maximal(m, false);
      if (ops) {
        // One-sided batch window scan: the presort guarantees candidates
        // never evict, so only "is it dominated" is needed.
        simd::RowBlock window(cols_);
        for (uint32_t i : order) {
          if (ops->dominated(prog_, Row(rows[i]), Ids(rows[i]), window)) {
            continue;
          }
          window.Append(Row(rows[i]), Ids(rows[i]), i);
        }
        for (size_t w = 0; w < window.size(); ++w) {
          maximal[window.payload(w)] = true;
        }
        return maximal;
      }
      std::vector<uint32_t> window;
      auto scan = [&](auto&& less) {
        for (uint32_t i : order) {
          bool dominated = false;
          for (uint32_t w : window) {
            if (less(rows[i], rows[w])) {
              dominated = true;
              break;
            }
          }
          if (!dominated) window.push_back(i);
        }
        for (uint32_t idx : window) maximal[idx] = true;
      };
      switch (prog_.mode) {
        case simd::DominanceProgram::Mode::kFlatPareto:
          scan([this](size_t x, size_t y) { return ParetoLess(x, y); });
          break;
        case simd::DominanceProgram::Mode::kFlatLex:
          scan([this](size_t x, size_t y) { return LexLess(x, y); });
          break;
        case simd::DominanceProgram::Mode::kGeneral:
          scan([this](size_t x, size_t y) { return GeneralLess(x, y); });
          break;
      }
      return maximal;
    }
    algo = BmoAlgorithm::kBlockNestedLoop;
  }

  // Everything left degrades to a window scan (kNaive keeps the exact
  // quadratic baseline); relation-level strategies (kParallel,
  // kDecomposition) land here too and run the batch BNL like the rest.
  if (algo != BmoAlgorithm::kNaive && ops) {
    return BnlBatch(*ops, rows, ResolveTileRows(plan.bnl_tile_rows));
  }

  switch (prog_.mode) {
    case simd::DominanceProgram::Mode::kFlatPareto: {
      auto less = [this](size_t x, size_t y) { return ParetoLess(x, y); };
      return algo == BmoAlgorithm::kNaive ? NaiveKernel(rows, less)
                                          : BnlKernel(rows, less);
    }
    case simd::DominanceProgram::Mode::kFlatLex: {
      auto less = [this](size_t x, size_t y) { return LexLess(x, y); };
      return algo == BmoAlgorithm::kNaive ? NaiveKernel(rows, less)
                                          : BnlKernel(rows, less);
    }
    case simd::DominanceProgram::Mode::kGeneral:
      break;
  }
  auto less = [this](size_t x, size_t y) { return GeneralLess(x, y); };
  return algo == BmoAlgorithm::kNaive ? NaiveKernel(rows, less)
                                      : BnlKernel(rows, less);
}

std::vector<bool> ScoreTable::MaximaRange(BmoAlgorithm algo, size_t begin,
                                          size_t end,
                                          const PhysicalPlan& plan) const {
  const simd::KernelOps* ops = simd::ResolveKernel(plan.simd);
  algo = ResolveFor(algo, ops);
  if (algo == BmoAlgorithm::kDivideConquer) {
    // Contiguous range: run KLP75 directly over the table storage.
    return MaximaDivideConquerFlat(scores_.data() + begin * cols_,
                                   end - begin, cols_, cols_, ops);
  }
  std::vector<size_t> rows(end - begin);
  std::iota(rows.begin(), rows.end(), begin);
  return MaximaSubset(algo, rows, plan);
}

std::vector<size_t> ScoreTable::MergeAntichains(
    const std::vector<size_t>& a, const std::vector<size_t>& b,
    const PhysicalPlan& plan) const {
  std::vector<size_t> out;
  out.reserve(a.size() + b.size());
  const simd::KernelOps* ops = simd::ResolveKernel(plan.simd);
  if (ops && a.size() + b.size() >= 4 * simd::kLanes) {
    // Gather each side column-major once, then every row of the other
    // side is a single one-sided batch scan.
    simd::RowBlock block_a(cols_);
    simd::RowBlock block_b(cols_);
    for (size_t x : a) block_a.Append(Row(x), Ids(x), x);
    for (size_t y : b) block_b.Append(Row(y), Ids(y), y);
    for (size_t x : a) {
      if (!ops->dominated(prog_, Row(x), Ids(x), block_b)) out.push_back(x);
    }
    for (size_t y : b) {
      if (!ops->dominated(prog_, Row(y), Ids(y), block_a)) out.push_back(y);
    }
    return out;
  }
  for (size_t x : a) {
    bool dominated = false;
    for (size_t y : b) {
      if (Less(x, y)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(x);
  }
  for (size_t y : b) {
    bool dominated = false;
    for (size_t x : a) {
      if (Less(y, x)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(y);
  }
  return out;
}

std::string ScoreTable::KernelVariant(BmoAlgorithm algo,
                                      const PhysicalPlan& plan) const {
  const simd::KernelOps* ops = simd::ResolveKernel(plan.simd);
  algo = ResolveFor(algo, ops);
  const std::string impl = ops ? ops->name : "rowwise";
  switch (algo) {
    case BmoAlgorithm::kNaive:
      return "naive[rowwise]";
    case BmoAlgorithm::kBlockNestedLoop:
      if (ops) {
        return "bnl[" + impl + ",tile=" +
               std::to_string(ResolveTileRows(plan.bnl_tile_rows)) + "]";
      }
      return "bnl[rowwise]";
    case BmoAlgorithm::kSortFilter:
      return "sfs[" + impl + "]";
    case BmoAlgorithm::kDivideConquer:
      return "dc[" + impl + "]";
    default:
      return impl;
  }
}

}  // namespace prefdb
