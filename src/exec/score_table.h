// Vectorized score-table execution layer: compiles a preference term once
// against a block of distinct projected values into a flat numeric matrix
// plus a dominance descriptor, so the BMO inner loops (BNL window, SFS
// presort + window, KLP75 divide & conquer) run over raw `const double*`
// rows instead of chasing per-comparison std::function closures and Tuple
// copies.
//
// What compiles (Kießling Defs. 6-9 fragment):
//  - numerical base preferences (LOWEST/HIGHEST/AROUND/BETWEEN/SCORE,
//    Def. 7): the leaf's inducing score, raw;
//  - level-based base preferences (POS/NEG/POS/POS/POS/NEG/LAYERED and
//    weak-order EXPLICIT graphs, Def. 6): dict-encoded intrinsic levels
//    (eval/quality.h), negated so "higher score = better" holds uniformly;
//  - rank(F) (Def. 10): the combined utility as one column;
//  - anti-chains (Def. 3b): a constant column whose equality classes are
//    the value combinations (this is what makes `A<-> & P` grouping terms
//    compile);
//  - arbitrary nesting of Pareto (Def. 8), prioritized (Def. 9),
//    intersection and disjoint-union (Def. 11) aggregation on top, and
//    DUAL of any of the above: DUAL distributes over all four (dual(P ⊗ Q)
//    = dual(P) ⊗ dual(Q), likewise for &, <> and +, since equality per
//    side is value equality either way and dual of a conjunction resp.
//    disjunction of orders is the conjunction/disjunction of the duals),
//    so the compiler pushes the order flip down to the leaves, where it is
//    a score negation on the descriptor. Intersection/union nodes have no
//    flat evaluation mode and run the general node program; disjoint union
//    compiles the *formula* l1 || l2 — the order-disjointness precondition
//    (Def. 4) remains the caller's contract, exactly as in the closure.
// Everything else (SUBSET, LINEAR_SUM, non-weak-order EXPLICIT) does not
// compile and the caller falls back to the closure-based path.
//
// Def. 8/9 equality is *value* equality, not score equality: AROUND(10)
// scores 5 and 15 identically although the values are incomparable. Each
// column therefore carries dict-encoded equality classes; columns whose
// scores are injective on the block skip the id test (score equality
// suffices), which is also the data-dependent precondition for the
// divide & conquer kernel (coordinatewise score dominance == Def. 8).
//
// The matrix is stored row-major: a dominance test touches every column of
// exactly two rows, so the two rows' scores are contiguous cache lines.

#ifndef PREFDB_EXEC_SCORE_TABLE_H_
#define PREFDB_EXEC_SCORE_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/preference.h"
#include "eval/bmo.h"
#include "eval/physical_plan.h"
#include "exec/float_eq.h"
#include "exec/simd/dominance.h"

namespace prefdb {

class Relation;

class ScoreTable {
 public:
  /// Static (data-independent) compilability of a term. True iff Compile()
  /// will succeed for any value block (modulo schema resolution errors,
  /// which throw from Compile exactly like Preference::Bind would).
  static bool CompilableTerm(const PrefPtr& p);

  /// Static sort-key derivability: true iff the compiled table will expose
  /// topologically compatible sort keys (every leaf yields one key;
  /// prioritization concatenates; Pareto needs single-key sides and sums).
  /// Strictly wider than Preference::BindSortKeys — level-based leaves are
  /// weak orders and always yield a key here.
  static bool HasStaticSortKeys(const PrefPtr& p);

  /// Compiles `p` against the `count` distinct projected values at
  /// `values`. Returns nullopt for non-compilable terms. Throws
  /// std::out_of_range when an attribute of `p` does not resolve in
  /// `proj_schema` (mirroring Preference::Bind).
  static std::optional<ScoreTable> Compile(const PrefPtr& p,
                                           const Schema& proj_schema,
                                           const Tuple* values, size_t count);

  /// True when CompileColumnar() can compile `p` straight off `r`'s column
  /// buffers: every leaf under the Pareto / prioritized / intersection /
  /// disjoint-union nesting is a numerical scored leaf (LOWEST / HIGHEST /
  /// AROUND / BETWEEN / SCORE) or rank(F), and every referenced column is
  /// all-numeric and NaN-free (an O(attributes) check over the store's
  /// running summary flags — no data scan).
  static bool CompilableColumnar(const PrefPtr& p, const Relation& r);

  /// Zero-copy compilation: builds the score matrix directly from the
  /// relation's contiguous numeric column buffers — no projection-index
  /// gather, no per-row Value materialization, no duplicate elimination.
  /// Row i of the table is pool position i (`pool` null means all rows),
  /// so maximal flags map back to rows by identity. Sound for duplicate
  /// rows too (equal values share scores and equality ids); callers gate
  /// on a distinctness heuristic purely for kernel-cost reasons.
  static std::optional<ScoreTable> CompileColumnar(
      const PrefPtr& p, const Relation& r,
      const std::vector<size_t>* pool = nullptr);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  /// Exact strict-partial-order test "x <P y" between two compiled rows;
  /// agrees with the closure p->Bind(proj_schema) on the block.
  bool Less(size_t x, size_t y) const;

  /// First row in `rows` that dominates x ("x <P row"), or SIZE_MAX when
  /// none does — the IVM layer's witness probe (ivm/maintained_view.h):
  /// a dominated row records one live dominator so deletes only re-scan
  /// rows whose witness died.
  size_t FindDominator(size_t x, const std::vector<size_t>& rows) const;

  /// True when the KLP75 divide & conquer kernel is exact on this block:
  /// flat Pareto descriptor and every column injective (score ties imply
  /// equal values), so Def. 8 dominance equals coordinatewise score
  /// dominance.
  bool CanDivideConquer() const;

  /// True when topologically compatible sort keys exist for the SFS kernel.
  bool HasSortKeys() const { return !sort_keys_.empty(); }
  size_t num_sort_keys() const { return sort_keys_.size(); }

  /// Exact per-column equality-class counts on this block, in descriptor
  /// column order. 0 means "injective by construction" (the numeric
  /// LOWEST/HIGHEST fast path skips id assignment): every row its own
  /// class. Feeds MeasureTermStats (stats/stats.h).
  const std::vector<uint32_t>& column_distinct() const {
    return col_distinct_;
  }

  /// The compiled dominance descriptor (shared with the batch kernels).
  const simd::DominanceProgram& program() const { return prog_; }

  /// Block-algorithm resolution with the same preference order the
  /// sequential evaluator uses: D&C when exact, else SFS when keys exist,
  /// else BNL.
  BmoAlgorithm ResolveAlgorithm() const;

  /// Maximal-row flags for the contiguous row range [begin, end) under the
  /// chosen kernel (kAuto resolves via ResolveAlgorithm; ineligible
  /// requests degrade to BNL). Partition-parallel callers share one
  /// immutable table and evaluate disjoint ranges concurrently. `plan`
  /// supplies the kernel fields of the physical plan — the batch
  /// dominance kernel (scalar/AVX2 dispatch) and the tiled-BNL block
  /// size; SimdMode::kOff keeps the row-major pair loops.
  std::vector<bool> MaximaRange(BmoAlgorithm algo, size_t begin, size_t end,
                                const PhysicalPlan& plan = {}) const;

  /// Maximal flags over an arbitrary row subset (the parallel engine's
  /// divide & conquer merge step). Returned flags align with `rows`.
  std::vector<bool> MaximaSubset(BmoAlgorithm algo,
                                 const std::vector<size_t>& rows,
                                 const PhysicalPlan& plan = {}) const;

  /// Maxima of the union of two antichains by cross-comparison only (the
  /// parallel engine's pairwise merge).
  std::vector<size_t> MergeAntichains(const std::vector<size_t>& a,
                                      const std::vector<size_t>& b,
                                      const PhysicalPlan& plan = {}) const;

  /// Human-readable label of the kernel variant MaximaRange would run for
  /// `algo` under `plan` — e.g. "bnl[avx2,tile=8192]", "sfs[scalar]",
  /// "dc[avx2]", "bnl[rowwise]" — surfaced by EXPLAIN and QueryStats.
  std::string KernelVariant(BmoAlgorithm algo,
                            const PhysicalPlan& plan = {}) const;

 private:
  ScoreTable() = default;

  struct ColumnData;  // per-column materialization state (score_table.cc)

  /// Sets ColumnData::use_ids when score equality does not imply value
  /// equality on the block (cross-class score ties or NaN scores).
  static void DetectUseIds(ColumnData& col);

  /// Shared tail of both compile paths: mode resolution, row-major matrix
  /// assembly, per-column flags and sort-key derivation. Consumes
  /// `columns`; prog_.nodes/root must already be built. `has_other` marks
  /// intersection/union nodes, which force the general evaluation mode.
  void Assemble(std::vector<ColumnData>&& columns, size_t count,
                bool has_pareto, bool has_prio, bool has_other);

  const double* Row(size_t r) const { return scores_.data() + r * cols_; }
  const uint32_t* Ids(size_t r) const { return ids_.data() + r * cols_; }

  bool ColumnEq(size_t c, const double* sx, const double* sy,
                const uint32_t* ix, const uint32_t* iy) const {
    // NaN-bearing columns always set use_ids, so the raw-score branch
    // meets ScoreEqNanFree's precondition.
    return prog_.use_ids[c] ? ix[c] == iy[c]
                            : exec::ScoreEqNanFree(sx[c], sy[c]);
  }
  bool ParetoLess(size_t x, size_t y) const;
  bool LexLess(size_t x, size_t y) const;
  bool GeneralLess(size_t x, size_t y) const;
  // (less, eq) of a descriptor subtree on a row pair.
  std::pair<bool, bool> EvalNode(int node, const double* sx, const double* sy,
                                 const uint32_t* ix,
                                 const uint32_t* iy) const;

  double SortKeyValue(size_t row, size_t key) const;

  /// Shared resolution for the execution entry points and KernelVariant:
  /// kAuto via ResolveAlgorithm (preferring the tiled BNL window over
  /// D&C when batch kernels are active), then the degrade rules (SFS
  /// without sort keys -> BNL, D&C without exactness -> BNL), so the
  /// reported variant can never drift from what executes.
  BmoAlgorithm ResolveFor(BmoAlgorithm algo,
                          const simd::KernelOps* ops) const;

  /// Blocked/tiled BNL over the batch dominance kernels. Streams
  /// candidates against the window while it is smaller than `tile_rows`;
  /// once the window outgrows that budget, each tile is reduced to its
  /// local maxima in cache and only the survivors antichain-merge into
  /// the global window. Returned flags align with `rows`.
  std::vector<bool> BnlBatch(const simd::KernelOps& ops,
                             const std::vector<size_t>& rows,
                             size_t tile_rows) const;
  size_t ResolveTileRows(size_t requested) const;

  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> scores_;  // row-major rows_ x cols_
  std::vector<uint32_t> ids_;   // row-major equality-class ids
  std::vector<uint32_t> col_distinct_;  // per-column classes (0 = injective)
  /// Dominance descriptor (mode, per-column id flags, node program),
  /// shared with the batch kernels.
  simd::DominanceProgram prog_;
  // Each sort key is the plain sum of the listed columns' scores; keys
  // compare lexicographically, descending = better first. Soundness of
  // the SFS kernel requires all key values finite — the kernel checks and
  // degrades to BNL otherwise (a NaN or +/-inf-absorbed sum can tie or
  // invert the topological order).
  std::vector<std::vector<int>> sort_keys_;
};

}  // namespace prefdb

#endif  // PREFDB_EXEC_SCORE_TABLE_H_
