#include "exec/thread_pool.h"

#include <algorithm>

namespace prefdb {

namespace {
// The pool (if any) whose WorkerLoop owns the current thread.
thread_local const ThreadPool* tls_current_pool = nullptr;
}  // namespace

size_t ThreadPool::ResolveThreads(size_t num_threads) {
  if (num_threads > 0) return num_threads;
  size_t hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = ResolveThreads(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_current_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, size_t min_chunk,
                             const std::function<void(size_t, size_t)>& body) {
  ParallelForChunks(n, size(), min_chunk,
                    [&body](size_t, size_t begin, size_t end) {
                      body(begin, end);
                    });
}

void ThreadPool::ParallelForChunks(
    size_t n, size_t max_chunks, size_t min_chunk,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  min_chunk = std::max<size_t>(1, min_chunk);
  const size_t chunks = std::min(max_chunks, n / min_chunk);
  if (chunks <= 1 || OnWorkerThread()) {
    body(0, 0, n);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = n * c / chunks;
    const size_t end = n * (c + 1) / chunks;
    pending.push_back(
        Submit([&body, c, begin, end] { body(c, begin, end); }));
  }
  // Wait for every chunk before get() may rethrow: an early unwind would
  // free the caller's state while other chunks still run body against it.
  for (std::future<void>& f : pending) f.wait();
  for (std::future<void>& f : pending) f.get();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace prefdb
