#include "exec/hardware.h"

#include <algorithm>
#include <cstdio>

#ifdef __unix__
#include <unistd.h>
#endif

namespace prefdb {

namespace {

size_t DetectL2() {
#if defined(__unix__) && defined(_SC_LEVEL2_CACHE_SIZE)
  long sc = sysconf(_SC_LEVEL2_CACHE_SIZE);
  if (sc > 0) return static_cast<size_t>(sc);
#endif
#ifdef __linux__
  // Some kernels report 0 through sysconf but populate sysfs.
  if (std::FILE* f = std::fopen(
          "/sys/devices/system/cpu/cpu0/cache/index2/size", "r")) {
    long kib = 0;
    char unit = 0;
    int got = std::fscanf(f, "%ld%c", &kib, &unit);
    std::fclose(f);
    if (got >= 1 && kib > 0) {
      size_t bytes = static_cast<size_t>(kib);
      if (got == 2 && (unit == 'K' || unit == 'k')) bytes *= 1024;
      if (got == 2 && (unit == 'M' || unit == 'm')) bytes *= 1024 * 1024;
      return bytes;
    }
  }
#endif
  return 0;
}

}  // namespace

size_t DetectedL2CacheBytes() {
  static const size_t bytes = DetectL2();
  return bytes;
}

size_t BnlTileBudgetBytes() {
  constexpr size_t kFallback = 256 * 1024;  // the tuned PR 4 constant
  constexpr size_t kMin = 128 * 1024;
  constexpr size_t kMax = 1024 * 1024;
  const size_t l2 = DetectedL2CacheBytes();
  if (l2 == 0) return kFallback;
  return std::min(kMax, std::max(kMin, l2 / 2));
}

}  // namespace prefdb
