// Batch dominance kernels: the SIMD layer under the score-table BMO
// paths (exec/score_table.h).
//
// The unit of work is one candidate row tested against a *block* of rows
// held column-major (structure of arrays), so a single pass over the
// block's column vectors decides kLanes row-pairs at a time: per column
// the kernel forms less/greater/equal lane masks (equality via the
// per-column dict ids when score ties cross equality classes, else via
// score equality — NaN scores compare unequal exactly like the scalar
// path) and combines them through the dominance descriptor program:
//
//   kFlatPareto  dominated = AND_c(lt|eq) & OR_c(lt)   (both directions in
//                one pass, early column exit when neither can still hold)
//   kFlatLex     first undecided column decides, lane-masked
//   kGeneral     the Pareto/prioritized node program evaluated bottom-up
//                (nodes are in postorder) over lane masks
//
// Two implementations sit behind one vtable: a portable scalar build of
// the same lane-blocked loops (autovectorizable, always present) and an
// AVX2 build (compiled only under -DPREFDB_SIMD=ON into its own TU with
// -mavx2, selected at runtime via CPU detection). Padding lanes past a
// block's size are kept zeroed so full-width loads are defined; result
// bits are masked to the live size.

#ifndef PREFDB_EXEC_SIMD_DOMINANCE_H_
#define PREFDB_EXEC_SIMD_DOMINANCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "eval/bmo.h"

namespace prefdb::simd {

/// Lane width all kernels agree on (4 doubles = one AVX2 register).
inline constexpr size_t kLanes = 4;

/// Flattened dominance descriptor shared by the scalar pair tests
/// (ScoreTable::Less) and the batch kernels. Built once at score-table
/// compile time.
struct DominanceProgram {
  enum class Mode : uint8_t {
    kFlatPareto,  // Pareto accumulation of all columns (incl. single leaf)
    kFlatLex,     // prioritized/lexicographic left-to-right
    kGeneral,     // arbitrary Pareto/prioritized nesting: node program
  };
  struct Node {
    // kIntersect/kUnion are the Def. 11 aggregations (P1 <> P2 orders when
    // both sides order; P1 + P2 when either does); both force kGeneral —
    // they have no flat-mode equivalent.
    enum class Kind : uint8_t { kLeaf, kPareto, kPrioritized, kIntersect,
                                kUnion };
    Kind kind = Kind::kLeaf;
    int a = -1;  // kLeaf: column index; else: left child node index
    int b = -1;  // right child node index
  };

  Mode mode = Mode::kFlatPareto;
  size_t cols = 0;
  std::vector<uint8_t> use_ids;  // per column: score ties need the id test
  /// kGeneral node program in postorder (children precede parents).
  std::vector<Node> nodes;
  int root = -1;
};

/// A column-major block of compiled rows (the BNL window, a BNL tile's
/// local window, or a gathered merge candidate set). Each column's score
/// and id vectors are padded with zeros to a multiple of kLanes so the
/// kernels can issue full-width loads.
class RowBlock {
 public:
  explicit RowBlock(size_t cols) : cols_(cols) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t cols() const { return cols_; }

  const double* scores(size_t c) const { return scores_.data() + c * cap_; }
  const uint32_t* ids(size_t c) const { return ids_.data() + c * cap_; }
  /// Caller-defined tag carried per entry (e.g. the global row index).
  size_t payload(size_t i) const { return payloads_[i]; }

  /// Appends one row given row-major score/id pointers (`ids` may be null
  /// when no column uses the id test; zeros are stored).
  void Append(const double* row_scores, const uint32_t* row_ids,
              size_t payload);

  /// Removes the entries whose bits are set in `evict_words`
  /// ((size+63)/64 words), preserving order and re-zeroing vacated lanes.
  void Evict(const uint64_t* evict_words);

  void Clear();

 private:
  void Grow();

  size_t cols_;
  size_t size_ = 0;
  size_t cap_ = 0;  // per-column lane capacity, multiple of kLanes
  std::vector<double> scores_;    // cols_ x cap_, column-major
  std::vector<uint32_t> ids_;     // cols_ x cap_, column-major
  std::vector<size_t> payloads_;  // size_
};

/// One kernel implementation. `scan` tests candidate row x (row-major
/// score/id pointers, `x_ids` may be null when no column uses ids)
/// against every block entry: returns true as soon as some entry
/// dominates x (the scan stops; `evict_words` contents are then
/// unspecified), else fills `evict_words` ((block.size()+63)/64 words)
/// with the entries x dominates and returns false. `dominated` is the
/// one-sided variant for the SFS window (no evictions there). An entry
/// equal to x (self-comparison) never counts as dominating either way.
struct KernelOps {
  const char* name;  // "scalar" | "avx2"
  bool (*scan)(const DominanceProgram& prog, const double* x_scores,
               const uint32_t* x_ids, const RowBlock& block,
               uint64_t* evict_words);
  bool (*dominated)(const DominanceProgram& prog, const double* x_scores,
                    const uint32_t* x_ids, const RowBlock& block);
};

/// True when this build carries the AVX2 kernels and the CPU executes
/// them (runtime dispatch; false under -DPREFDB_SIMD=OFF).
bool Avx2Available();

/// Maps the execution option to a kernel: kOff -> nullptr (callers keep
/// the row-major pair loops), kAuto/kAvx2 -> AVX2 when available, else
/// the portable batch kernels.
const KernelOps* ResolveKernel(SimdMode mode);

/// The portable kernels (always present; the AVX2 tail reuses them).
const KernelOps& ScalarKernel();

}  // namespace prefdb::simd

#endif  // PREFDB_EXEC_SIMD_DOMINANCE_H_
