#include "exec/simd/dominance.h"

#include <algorithm>

#include "exec/float_eq.h"

namespace prefdb::simd {

// ---------------------------------------------------------------------------
// RowBlock

void RowBlock::Grow() {
  const size_t new_cap = cap_ == 0 ? 2 * kLanes : cap_ * 2;
  std::vector<double> new_scores(cols_ * new_cap, 0.0);
  std::vector<uint32_t> new_ids(cols_ * new_cap, 0);
  for (size_t c = 0; c < cols_; ++c) {
    std::copy(scores_.begin() + c * cap_, scores_.begin() + c * cap_ + size_,
              new_scores.begin() + c * new_cap);
    std::copy(ids_.begin() + c * cap_, ids_.begin() + c * cap_ + size_,
              new_ids.begin() + c * new_cap);
  }
  scores_ = std::move(new_scores);
  ids_ = std::move(new_ids);
  cap_ = new_cap;
}

void RowBlock::Append(const double* row_scores, const uint32_t* row_ids,
                      size_t payload) {
  if (size_ == cap_) Grow();
  for (size_t c = 0; c < cols_; ++c) {
    scores_[c * cap_ + size_] = row_scores[c];
    ids_[c * cap_ + size_] = row_ids ? row_ids[c] : 0;
  }
  payloads_.push_back(payload);
  ++size_;
}

void RowBlock::Evict(const uint64_t* evict_words) {
  size_t keep = 0;
  for (size_t i = 0; i < size_; ++i) {
    if ((evict_words[i / 64] >> (i % 64)) & 1) continue;
    if (keep != i) {
      for (size_t c = 0; c < cols_; ++c) {
        scores_[c * cap_ + keep] = scores_[c * cap_ + i];
        ids_[c * cap_ + keep] = ids_[c * cap_ + i];
      }
      payloads_[keep] = payloads_[i];
    }
    ++keep;
  }
  // Re-zero vacated lanes: the kernels load full lane chunks, so padding
  // past size() must stay defined.
  for (size_t c = 0; c < cols_; ++c) {
    std::fill(scores_.begin() + c * cap_ + keep,
              scores_.begin() + c * cap_ + size_, 0.0);
    std::fill(ids_.begin() + c * cap_ + keep, ids_.begin() + c * cap_ + size_,
              0u);
  }
  payloads_.resize(keep);
  size_ = keep;
}

void RowBlock::Clear() {
  for (size_t c = 0; c < cols_; ++c) {
    std::fill(scores_.begin() + c * cap_, scores_.begin() + c * cap_ + size_,
              0.0);
    std::fill(ids_.begin() + c * cap_, ids_.begin() + c * cap_ + size_, 0u);
  }
  payloads_.clear();
  size_ = 0;
}

// ---------------------------------------------------------------------------
// Portable batch kernels: the same lane-blocked loop structure as the
// AVX2 build, over `unsigned` lane-bit masks (bit l = lane l of the
// current chunk). Plain enough that compilers autovectorize the inner
// lane loops.

namespace {

constexpr unsigned kLaneMask = (1u << kLanes) - 1;

struct Masks {
  unsigned lt = 0;  // x[c] < y[c] per lane (candidate worse)
  unsigned gt = 0;
  unsigned eq = 0;
};

inline Masks ColumnMasks(double xv, uint32_t xid, bool use_ids,
                         const double* col, const uint32_t* idcol,
                         size_t base) {
  Masks m;
  for (unsigned l = 0; l < kLanes; ++l) {
    const double yv = col[base + l];
    m.lt |= static_cast<unsigned>(xv < yv) << l;
    m.gt |= static_cast<unsigned>(xv > yv) << l;
    // NaN-bearing columns compile with use_ids set, so the raw-score
    // lane meets ScoreEqNanFree's NaN-free precondition.
    m.eq |= static_cast<unsigned>(use_ids ? xid == idcol[base + l]
                                          : exec::ScoreEqNanFree(xv, yv))
            << l;
  }
  return m;
}

// (x <P node y, y <P node x, x =node y) lane masks of a descriptor
// subtree on the chunk at `base`; nodes are in postorder, recursion depth
// is the tree depth.
struct NodeMasks {
  unsigned less_x, less_y, eq;
};

NodeMasks EvalNode(const DominanceProgram& prog, int idx,
                   const double* x_scores, const uint32_t* x_ids,
                   const RowBlock& block, size_t base) {
  const DominanceProgram::Node& node = prog.nodes[idx];
  if (node.kind == DominanceProgram::Node::Kind::kLeaf) {
    const size_t c = static_cast<size_t>(node.a);
    Masks m = ColumnMasks(x_scores[c], x_ids ? x_ids[c] : 0,
                          prog.use_ids[c] != 0, block.scores(c), block.ids(c),
                          base);
    return {m.lt, m.gt, m.eq};
  }
  NodeMasks l = EvalNode(prog, node.a, x_scores, x_ids, block, base);
  NodeMasks r = EvalNode(prog, node.b, x_scores, x_ids, block, base);
  if (node.kind == DominanceProgram::Node::Kind::kPareto) {
    return {(l.less_x & (r.less_x | r.eq)) | (r.less_x & (l.less_x | l.eq)),
            (l.less_y & (r.less_y | r.eq)) | (r.less_y & (l.less_y | l.eq)),
            l.eq & r.eq};
  }
  if (node.kind == DominanceProgram::Node::Kind::kIntersect) {
    return {l.less_x & r.less_x, l.less_y & r.less_y, l.eq & r.eq};
  }
  if (node.kind == DominanceProgram::Node::Kind::kUnion) {
    return {l.less_x | r.less_x, l.less_y | r.less_y, l.eq & r.eq};
  }
  return {l.less_x | (l.eq & r.less_x), l.less_y | (l.eq & r.less_y),
          l.eq & r.eq};
}

// (dominated, dominates) lane masks for the chunk at `base`. When
// OneSided, only `dominated` is meaningful (the SFS window never evicts).
template <bool OneSided>
inline std::pair<unsigned, unsigned> Chunk(const DominanceProgram& prog,
                                           const double* x_scores,
                                           const uint32_t* x_ids,
                                           const RowBlock& block,
                                           size_t base) {
  switch (prog.mode) {
    case DominanceProgram::Mode::kFlatPareto: {
      unsigned all_le = kLaneMask, any_lt = 0;
      unsigned all_ge = kLaneMask, any_gt = 0;
      for (size_t c = 0; c < prog.cols; ++c) {
        Masks m = ColumnMasks(x_scores[c], x_ids ? x_ids[c] : 0,
                              prog.use_ids[c] != 0, block.scores(c),
                              block.ids(c), base);
        all_le &= m.lt | m.eq;
        any_lt |= m.lt;
        if (!OneSided) {
          all_ge &= m.gt | m.eq;
          any_gt |= m.gt;
        }
        if ((all_le | (OneSided ? 0u : all_ge)) == 0) break;
      }
      return {all_le & any_lt, OneSided ? 0u : (all_ge & any_gt)};
    }
    case DominanceProgram::Mode::kFlatLex: {
      unsigned decided = 0, dominated = 0, dominates = 0;
      for (size_t c = 0; c < prog.cols; ++c) {
        Masks m = ColumnMasks(x_scores[c], x_ids ? x_ids[c] : 0,
                              prog.use_ids[c] != 0, block.scores(c),
                              block.ids(c), base);
        const unsigned neq = kLaneMask & ~m.eq;
        const unsigned newly = neq & ~decided;
        dominated |= newly & m.lt;
        if (!OneSided) dominates |= newly & m.gt;
        decided |= neq;
        if (decided == kLaneMask) break;
      }
      return {dominated, dominates};
    }
    case DominanceProgram::Mode::kGeneral:
      break;
  }
  NodeMasks r = EvalNode(prog, prog.root, x_scores, x_ids, block, base);
  return {r.less_x, OneSided ? 0u : r.less_y};
}

bool ScalarScan(const DominanceProgram& prog, const double* x_scores,
                const uint32_t* x_ids, const RowBlock& block,
                uint64_t* evict_words) {
  const size_t n = block.size();
  for (size_t w = 0; w < (n + 63) / 64; ++w) evict_words[w] = 0;
  for (size_t base = 0; base < n; base += kLanes) {
    const unsigned valid =
        n - base >= kLanes ? kLaneMask : ((1u << (n - base)) - 1);
    auto [dominated, dominates] =
        Chunk<false>(prog, x_scores, x_ids, block, base);
    if (dominated & valid) return true;
    if (dominates & valid) {
      evict_words[base / 64] |= static_cast<uint64_t>(dominates & valid)
                                << (base % 64);
    }
  }
  return false;
}

bool ScalarDominated(const DominanceProgram& prog, const double* x_scores,
                     const uint32_t* x_ids, const RowBlock& block) {
  const size_t n = block.size();
  for (size_t base = 0; base < n; base += kLanes) {
    const unsigned valid =
        n - base >= kLanes ? kLaneMask : ((1u << (n - base)) - 1);
    auto [dominated, unused] =
        Chunk<true>(prog, x_scores, x_ids, block, base);
    (void)unused;
    if (dominated & valid) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch

const KernelOps& ScalarKernel() {
  static const KernelOps ops{"scalar", &ScalarScan, &ScalarDominated};
  return ops;
}

#if defined(PREFDB_HAVE_AVX2)
namespace avx2_impl {
extern const KernelOps kOps;  // dominance_avx2.cc, compiled with -mavx2
}
#endif

bool Avx2Available() {
#if defined(PREFDB_HAVE_AVX2) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const KernelOps* ResolveKernel(SimdMode mode) {
  switch (mode) {
    case SimdMode::kOff:
      return nullptr;
    case SimdMode::kScalar:
      return &ScalarKernel();
    case SimdMode::kAuto:
    case SimdMode::kAvx2:
      break;
  }
#if defined(PREFDB_HAVE_AVX2)
  if (Avx2Available()) return &avx2_impl::kOps;
#endif
  return &ScalarKernel();
}

}  // namespace prefdb::simd
