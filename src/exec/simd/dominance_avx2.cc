// AVX2 build of the batch dominance kernels (see dominance.h for the
// shared structure). This TU is compiled with -mavx2 only under
// -DPREFDB_SIMD=ON; dominance.cc selects it at runtime via CPU detection,
// so no AVX2 instruction executes on CPUs without the feature.
//
// Lane masks are __m256d vectors of all-ones/all-zero per 64-bit lane;
// the score comparisons use ordered-quiet predicates so NaN scores
// compare neither less, greater nor equal — exactly the scalar
// semantics. Id equality widens a 4x32 integer compare to 4x64 lanes.

#if defined(PREFDB_HAVE_AVX2)

#include <immintrin.h>

#include <utility>

#include "exec/simd/dominance.h"

namespace prefdb::simd {
namespace avx2_impl {

namespace {

struct Masks {
  __m256d lt, gt, eq;
};

inline __m256d AllOnes() {
  return _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
}

inline Masks ColumnMasks(double xv, uint32_t xid, bool use_ids,
                         const double* col, const uint32_t* idcol,
                         size_t base) {
  const __m256d xb = _mm256_set1_pd(xv);
  const __m256d yv = _mm256_loadu_pd(col + base);
  Masks m;
  m.lt = _mm256_cmp_pd(xb, yv, _CMP_LT_OQ);
  m.gt = _mm256_cmp_pd(xb, yv, _CMP_GT_OQ);
  if (use_ids) {
    const __m128i yid =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idcol + base));
    const __m128i eq32 =
        _mm_cmpeq_epi32(yid, _mm_set1_epi32(static_cast<int>(xid)));
    m.eq = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq32));
  } else {
    m.eq = _mm256_cmp_pd(xb, yv, _CMP_EQ_OQ);
  }
  return m;
}

struct NodeMasks {
  __m256d less_x, less_y, eq;
};

NodeMasks EvalNode(const DominanceProgram& prog, int idx,
                   const double* x_scores, const uint32_t* x_ids,
                   const RowBlock& block, size_t base) {
  const DominanceProgram::Node& node = prog.nodes[idx];
  if (node.kind == DominanceProgram::Node::Kind::kLeaf) {
    const size_t c = static_cast<size_t>(node.a);
    Masks m = ColumnMasks(x_scores[c], x_ids ? x_ids[c] : 0,
                          prog.use_ids[c] != 0, block.scores(c), block.ids(c),
                          base);
    return {m.lt, m.gt, m.eq};
  }
  NodeMasks l = EvalNode(prog, node.a, x_scores, x_ids, block, base);
  NodeMasks r = EvalNode(prog, node.b, x_scores, x_ids, block, base);
  if (node.kind == DominanceProgram::Node::Kind::kPareto) {
    return {_mm256_or_pd(
                _mm256_and_pd(l.less_x, _mm256_or_pd(r.less_x, r.eq)),
                _mm256_and_pd(r.less_x, _mm256_or_pd(l.less_x, l.eq))),
            _mm256_or_pd(
                _mm256_and_pd(l.less_y, _mm256_or_pd(r.less_y, r.eq)),
                _mm256_and_pd(r.less_y, _mm256_or_pd(l.less_y, l.eq))),
            _mm256_and_pd(l.eq, r.eq)};
  }
  if (node.kind == DominanceProgram::Node::Kind::kIntersect) {
    return {_mm256_and_pd(l.less_x, r.less_x),
            _mm256_and_pd(l.less_y, r.less_y), _mm256_and_pd(l.eq, r.eq)};
  }
  if (node.kind == DominanceProgram::Node::Kind::kUnion) {
    return {_mm256_or_pd(l.less_x, r.less_x),
            _mm256_or_pd(l.less_y, r.less_y), _mm256_and_pd(l.eq, r.eq)};
  }
  return {_mm256_or_pd(l.less_x, _mm256_and_pd(l.eq, r.less_x)),
          _mm256_or_pd(l.less_y, _mm256_and_pd(l.eq, r.less_y)),
          _mm256_and_pd(l.eq, r.eq)};
}

template <bool OneSided>
inline std::pair<unsigned, unsigned> Chunk(const DominanceProgram& prog,
                                           const double* x_scores,
                                           const uint32_t* x_ids,
                                           const RowBlock& block,
                                           size_t base) {
  switch (prog.mode) {
    case DominanceProgram::Mode::kFlatPareto: {
      __m256d all_le = AllOnes(), any_lt = _mm256_setzero_pd();
      __m256d all_ge = AllOnes(), any_gt = _mm256_setzero_pd();
      for (size_t c = 0; c < prog.cols; ++c) {
        Masks m = ColumnMasks(x_scores[c], x_ids ? x_ids[c] : 0,
                              prog.use_ids[c] != 0, block.scores(c),
                              block.ids(c), base);
        all_le = _mm256_and_pd(all_le, _mm256_or_pd(m.lt, m.eq));
        any_lt = _mm256_or_pd(any_lt, m.lt);
        if (!OneSided) {
          all_ge = _mm256_and_pd(all_ge, _mm256_or_pd(m.gt, m.eq));
          any_gt = _mm256_or_pd(any_gt, m.gt);
        }
        const __m256d open =
            OneSided ? all_le : _mm256_or_pd(all_le, all_ge);
        if (_mm256_movemask_pd(open) == 0) break;
      }
      const unsigned dominated = static_cast<unsigned>(
          _mm256_movemask_pd(_mm256_and_pd(all_le, any_lt)));
      const unsigned dominates =
          OneSided ? 0u
                   : static_cast<unsigned>(_mm256_movemask_pd(
                         _mm256_and_pd(all_ge, any_gt)));
      return {dominated, dominates};
    }
    case DominanceProgram::Mode::kFlatLex: {
      const __m256d ones = AllOnes();
      __m256d decided = _mm256_setzero_pd();
      __m256d dominated = _mm256_setzero_pd();
      __m256d dominates = _mm256_setzero_pd();
      for (size_t c = 0; c < prog.cols; ++c) {
        Masks m = ColumnMasks(x_scores[c], x_ids ? x_ids[c] : 0,
                              prog.use_ids[c] != 0, block.scores(c),
                              block.ids(c), base);
        const __m256d neq = _mm256_andnot_pd(m.eq, ones);
        const __m256d newly = _mm256_andnot_pd(decided, neq);
        dominated = _mm256_or_pd(dominated, _mm256_and_pd(newly, m.lt));
        if (!OneSided) {
          dominates = _mm256_or_pd(dominates, _mm256_and_pd(newly, m.gt));
        }
        decided = _mm256_or_pd(decided, neq);
        if (_mm256_movemask_pd(decided) == 0xF) break;
      }
      return {static_cast<unsigned>(_mm256_movemask_pd(dominated)),
              OneSided
                  ? 0u
                  : static_cast<unsigned>(_mm256_movemask_pd(dominates))};
    }
    case DominanceProgram::Mode::kGeneral:
      break;
  }
  NodeMasks r = EvalNode(prog, prog.root, x_scores, x_ids, block, base);
  return {static_cast<unsigned>(_mm256_movemask_pd(r.less_x)),
          OneSided ? 0u
                   : static_cast<unsigned>(_mm256_movemask_pd(r.less_y))};
}

constexpr unsigned kLaneMask = (1u << kLanes) - 1;

bool Avx2Scan(const DominanceProgram& prog, const double* x_scores,
              const uint32_t* x_ids, const RowBlock& block,
              uint64_t* evict_words) {
  const size_t n = block.size();
  for (size_t w = 0; w < (n + 63) / 64; ++w) evict_words[w] = 0;
  for (size_t base = 0; base < n; base += kLanes) {
    const unsigned valid =
        n - base >= kLanes ? kLaneMask : ((1u << (n - base)) - 1);
    auto [dominated, dominates] =
        Chunk<false>(prog, x_scores, x_ids, block, base);
    if (dominated & valid) return true;
    if (dominates & valid) {
      evict_words[base / 64] |= static_cast<uint64_t>(dominates & valid)
                                << (base % 64);
    }
  }
  return false;
}

bool Avx2Dominated(const DominanceProgram& prog, const double* x_scores,
                   const uint32_t* x_ids, const RowBlock& block) {
  const size_t n = block.size();
  for (size_t base = 0; base < n; base += kLanes) {
    const unsigned valid =
        n - base >= kLanes ? kLaneMask : ((1u << (n - base)) - 1);
    auto [dominated, unused] =
        Chunk<true>(prog, x_scores, x_ids, block, base);
    (void)unused;
    if (dominated & valid) return true;
  }
  return false;
}

}  // namespace

// `extern` first: a const object at namespace scope would otherwise get
// internal linkage and never resolve dominance.cc's reference.
extern const KernelOps kOps;
const KernelOps kOps{"avx2", &Avx2Scan, &Avx2Dominated};

}  // namespace avx2_impl
}  // namespace prefdb::simd

#endif  // PREFDB_HAVE_AVX2
