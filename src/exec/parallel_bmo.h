// Parallel partitioned BMO evaluation: split the distinct-value set into P
// contiguous partitions, compute local maxima per partition on the worker
// pool, then merge the union of local maxima with one final window pass.
//
// Correct for arbitrary strict partial orders:
//  - local maxima are a superset of global maxima (a globally maximal value
//    has no dominator anywhere, in particular none in its own partition);
//  - the merge pass removes every globally dominated candidate: if y <P x
//    held for any x in the input, walking x's dominator chain within its
//    partition ends at a local maximum that, by transitivity, still
//    dominates y.
//
// Execution shape (worker budget, partition floor, per-partition
// algorithm, kernel fields) comes from the PhysicalPlan
// (eval/physical_plan.h) — the same planned artifact every other
// execution path consumes.

#ifndef PREFDB_EXEC_PARALLEL_BMO_H_
#define PREFDB_EXEC_PARALLEL_BMO_H_

#include <vector>

#include "core/preference.h"
#include "eval/bmo.h"
#include "eval/physical_plan.h"
#include "relation/relation.h"

namespace prefdb {

class ScoreTable;

/// Maximal-value flags over a distinct-value set, partition-parallel.
/// Consulted plan fields: num_threads (0 = hardware), min_partition_size
/// (inputs below two partitions run sequentially), partition_algorithm
/// (kAuto resolves data-aware), vectorize, simd, bnl_tile_rows.
std::vector<bool> MaximaParallel(const std::vector<Tuple>& values,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const PhysicalPlan& plan = {});

/// Same, over a caller-supplied score table already compiled for exactly
/// these `values` (the engine's per-(relation version, term) cache hands
/// its table in so repeated runs skip recompilation). `precompiled` may be
/// null, in which case the table is compiled locally per plan.vectorize.
std::vector<bool> MaximaParallel(const std::vector<Tuple>& values,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const PhysicalPlan& plan,
                                 const ScoreTable* precompiled);

/// Raw-range core shared by both overloads. `values` may be null when
/// `precompiled` is non-null: with a table every partition and merge pass
/// runs off the compiled matrix, so the value block is never read (the
/// zero-copy columnar compile path has none).
std::vector<bool> MaximaParallel(const Tuple* values, size_t count,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const PhysicalPlan& plan,
                                 const ScoreTable* precompiled);

/// σ[P](R) row indices (ascending) evaluated with the parallel engine;
/// same contract as BmoIndices().
std::vector<size_t> ParallelBmoIndices(const Relation& r, const PrefPtr& p,
                                       const PhysicalPlan& plan = {});

/// σ[P](R) evaluated with the parallel engine; preserves input row order
/// and duplicates like Bmo().
Relation ParallelBmo(const Relation& r, const PrefPtr& p,
                     const PhysicalPlan& plan = {});

}  // namespace prefdb

#endif  // PREFDB_EXEC_PARALLEL_BMO_H_
