// Parallel partitioned BMO evaluation: split the distinct-value set into P
// contiguous partitions, compute local maxima per partition on the worker
// pool, then merge the union of local maxima with one final window pass.
//
// Correct for arbitrary strict partial orders:
//  - local maxima are a superset of global maxima (a globally maximal value
//    has no dominator anywhere, in particular none in its own partition);
//  - the merge pass removes every globally dominated candidate: if y <P x
//    held for any x in the input, walking x's dominator chain within its
//    partition ends at a local maximum that, by transitivity, still
//    dominates y.

#ifndef PREFDB_EXEC_PARALLEL_BMO_H_
#define PREFDB_EXEC_PARALLEL_BMO_H_

#include <vector>

#include "core/preference.h"
#include "eval/bmo.h"
#include "relation/relation.h"

namespace prefdb {

class ScoreTable;

struct ParallelBmoConfig {
  /// Worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Never split below this many distinct values per partition; inputs
  /// smaller than two partitions run sequentially.
  size_t min_partition_size = 4096;
  /// Algorithm run on each partition and on the merge pass. kAuto resolves
  /// with the sequential heuristics (D&C for skyline fragments, SFS when
  /// sort keys exist, BNL otherwise).
  BmoAlgorithm partition_algorithm = BmoAlgorithm::kAuto;
  /// Compile the term once into a shared immutable score table
  /// (exec/score_table.h); all partitions and merge rounds then run the
  /// vectorized kernels over it. Non-compilable terms use the closure
  /// path regardless.
  bool vectorize = true;
  /// Batch dominance kernel for the compiled paths (see BmoOptions).
  SimdMode simd = SimdMode::kAuto;
  /// BNL tile size per partition (0 = auto L2-sized, see BmoOptions);
  /// each partition runs the tiled window loop independently.
  size_t bnl_tile_rows = 0;
};

/// Maximal-value flags over a distinct-value set, partition-parallel.
std::vector<bool> MaximaParallel(const std::vector<Tuple>& values,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const ParallelBmoConfig& config = {});

/// Same, over a caller-supplied score table already compiled for exactly
/// these `values` (the engine's per-(relation version, term) cache hands
/// its table in so repeated runs skip recompilation). `precompiled` may be
/// null, in which case the table is compiled locally per config.vectorize.
std::vector<bool> MaximaParallel(const std::vector<Tuple>& values,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const ParallelBmoConfig& config,
                                 const ScoreTable* precompiled);

/// σ[P](R) row indices (ascending) evaluated with the parallel engine;
/// same contract as BmoIndices().
std::vector<size_t> ParallelBmoIndices(const Relation& r, const PrefPtr& p,
                                       const ParallelBmoConfig& config = {});

/// σ[P](R) evaluated with the parallel engine; preserves input row order
/// and duplicates like Bmo().
Relation ParallelBmo(const Relation& r, const PrefPtr& p,
                     const ParallelBmoConfig& config = {});

}  // namespace prefdb

#endif  // PREFDB_EXEC_PARALLEL_BMO_H_
