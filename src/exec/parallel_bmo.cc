#include "exec/parallel_bmo.h"

#include <algorithm>
#include <optional>

#include "eval/bmo_internal.h"
#include "exec/score_table.h"
#include "exec/thread_pool.h"

namespace prefdb {

namespace {

// Maxima of the union of two antichains (each the output of a prior
// maxima pass, so within-list domination is impossible): only the
// |a|*|b| cross-comparisons are needed, and no tuples are materialized.
std::vector<size_t> MergeAntichains(const Tuple* values, const LessFn& less,
                                    const std::vector<size_t>& a,
                                    const std::vector<size_t>& b) {
  std::vector<size_t> out;
  out.reserve(a.size() + b.size());
  for (size_t x : a) {
    bool dominated = false;
    for (size_t y : b) {
      if (less(values[x], values[y])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(x);
  }
  for (size_t y : b) {
    bool dominated = false;
    for (size_t x : a) {
      if (less(values[y], values[x])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(y);
  }
  return out;
}

}  // namespace

std::vector<bool> MaximaParallel(const std::vector<Tuple>& values,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const PhysicalPlan& plan) {
  return MaximaParallel(values, p, proj_schema, plan, nullptr);
}

std::vector<bool> MaximaParallel(const std::vector<Tuple>& values,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const PhysicalPlan& plan,
                                 const ScoreTable* precompiled) {
  return MaximaParallel(values.data(), values.size(), p, proj_schema, plan,
                        precompiled);
}

std::vector<bool> MaximaParallel(const Tuple* values, size_t m,
                                 const PrefPtr& p, const Schema& proj_schema,
                                 const PhysicalPlan& plan,
                                 const ScoreTable* precompiled) {
  std::vector<bool> maximal(m, false);
  if (m == 0) return maximal;

  // Compile once (unless the caller hands a cached table in); every
  // partition and merge round shares the immutable table (reads only, no
  // synchronization needed). A null `values` requires `precompiled`
  // (header contract): every branch below then goes through the table.
  std::optional<ScoreTable> local_table;
  const ScoreTable* table = precompiled;
  if (table == nullptr && plan.vectorize) {
    local_table = ScoreTable::Compile(p, proj_schema, values, m);
    if (local_table) table = &*local_table;
  }

  BmoAlgorithm algo = plan.partition_algorithm;
  if (algo == BmoAlgorithm::kAuto) {
    algo = table ? table->ResolveAlgorithm()
                 : internal::ResolveBlockAlgorithm(p, proj_schema);
  }

  // The closure fallback plan: block evaluation without recompiling the
  // table that already failed (or was disabled) above.
  PhysicalPlan closure_plan = plan;
  closure_plan.vectorize = false;
  closure_plan.algorithm = algo;

  ThreadPool& pool = ThreadPool::Shared();
  const size_t threads = ThreadPool::ResolveThreads(plan.num_threads);
  const size_t min_part = std::max<size_t>(1, plan.min_partition_size);
  const size_t parts = std::min(threads, std::max<size_t>(1, m / min_part));
  if (parts <= 1 || pool.OnWorkerThread()) {
    // Too small to split, or already on a pool worker (where blocking on
    // further pool tasks could deadlock): evaluate sequentially.
    if (table) return table->MaximaRange(algo, 0, m, plan);
    return internal::ComputeMaximaBlock(values, m, p, proj_schema,
                                        closure_plan);
  }

  // Phase 1: local maxima per contiguous partition, in parallel. Each
  // chunk writes only its own slot of `local`.
  std::vector<std::vector<size_t>> local(parts);
  pool.ParallelForChunks(
      m, parts, min_part,
      [&values, &p, &proj_schema, &local, &table, &plan, &closure_plan, algo](
          size_t c, size_t begin, size_t end) {
        std::vector<bool> flags =
            table ? table->MaximaRange(algo, begin, end, plan)
                  : internal::ComputeMaximaBlock(values + begin, end - begin,
                                                 p, proj_schema,
                                                 closure_plan);
        for (size_t i = begin; i < end; ++i) {
          if (flags[i - begin]) local[c].push_back(i);
        }
      });

  // Phase 2: merge local-maxima lists pairwise on the pool, log2(parts)
  // rounds. On low-selectivity data the candidate union approaches m, so
  // a single sequential merge pass would redo nearly all the work; the
  // tree keeps the large early merges parallel. Eliminations stay sound
  // round over round: an element is only dropped when a still-present
  // element dominates it, and dominator chains terminate at the final
  // survivors.
  std::vector<std::vector<size_t>> lists = std::move(local);
  while (lists.size() > 1) {
    const size_t pairs = lists.size() / 2;
    std::vector<std::vector<size_t>> next(pairs + lists.size() % 2);
    pool.ParallelForChunks(
        pairs, pairs, 1,
        [&values, &p, &proj_schema, &lists, &next, &table, &plan,
         &closure_plan, algo](size_t, size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            const std::vector<size_t>& a = lists[2 * k];
            const std::vector<size_t>& b = lists[2 * k + 1];
            if (algo == BmoAlgorithm::kDivideConquer) {
              // D&C's asymptotics on big merges repay the gather copy.
              std::vector<size_t> cand;
              cand.reserve(a.size() + b.size());
              cand.insert(cand.end(), a.begin(), a.end());
              cand.insert(cand.end(), b.begin(), b.end());
              std::vector<bool> flags;
              if (table) {
                flags = table->MaximaSubset(algo, cand, plan);
              } else {
                std::vector<Tuple> cand_values;
                cand_values.reserve(cand.size());
                for (size_t i : cand) cand_values.push_back(values[i]);
                flags = internal::ComputeMaximaBlock(cand_values, p,
                                                     proj_schema,
                                                     closure_plan);
              }
              for (size_t i = 0; i < cand.size(); ++i) {
                if (flags[i]) next[k].push_back(cand[i]);
              }
            } else if (table) {
              next[k] = table->MergeAntichains(a, b, plan);
            } else {
              next[k] =
                  MergeAntichains(values, p->Bind(proj_schema), a, b);
            }
          }
        });
    if (lists.size() % 2) next.back() = std::move(lists.back());
    lists = std::move(next);
  }
  for (size_t i : lists[0]) maximal[i] = true;
  return maximal;
}

std::vector<size_t> ParallelBmoIndices(const Relation& r, const PrefPtr& p,
                                       const PhysicalPlan& plan) {
  if (r.empty()) return {};
  ProjectionIndex proj = BuildProjectionIndex(r, *p);
  std::vector<bool> maximal =
      MaximaParallel(proj.values, p, proj.proj_schema, plan);
  std::vector<size_t> rows;
  for (size_t i = 0; i < r.size(); ++i) {
    if (maximal[proj.row_to_value[i]]) rows.push_back(i);
  }
  return rows;
}

Relation ParallelBmo(const Relation& r, const PrefPtr& p,
                     const PhysicalPlan& plan) {
  return r.SelectRows(ParallelBmoIndices(r, p, plan));
}

}  // namespace prefdb
