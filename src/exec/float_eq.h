// NaN-guard float-equality helpers — the only translation unit where
// kernel/score-table code may compare float/double with ==/!= (enforced
// by prefdb-lint's prefdb-float-eq rule).
//
// Why a dedicated header: IEEE `NaN == NaN` is false, so a raw == in an
// equality-class or window-key computation silently splits classes (or
// inverts a topological order) the moment a NaN leaks in — the SFS
// non-finite-key unsoundness fixed in PR 2 was exactly this. Every
// comparison below spells out its NaN contract, and every caller names
// which contract it relies on.

#ifndef PREFDB_EXEC_FLOAT_EQ_H_
#define PREFDB_EXEC_FLOAT_EQ_H_

#include <cmath>

namespace prefdb::exec {

/// Exact IEEE equality for values the caller has already proven NaN-free
/// (score-table columns route NaN-bearing data to the dict/id path before
/// any raw-score comparison; SFS checks finiteness before keying).
/// Precondition: neither operand is NaN — under that precondition IEEE
/// equality coincides with equality-class identity.
inline bool ScoreEqNanFree(double a, double b) { return a == b; }

/// Negation of ScoreEqNanFree, same precondition.
inline bool ScoreNeqNanFree(double a, double b) { return a != b; }

/// Equality where NaN may appear: all NaNs collapse into one equality
/// class (reflexive, symmetric, transitive), matching Value::operator=='s
/// treatment of NULL-derived scores.
inline bool ScoreEqOrBothNan(double a, double b) {
  return a == b || (std::isnan(a) && std::isnan(b));
}

}  // namespace prefdb::exec

#endif  // PREFDB_EXEC_FLOAT_EQ_H_
