// Runtime hardware discovery for the execution layer: cache geometry the
// kernels and the cost model size themselves against. Detection happens
// once (thread-safe static init); unknown values fall back to
// conservative constants so the kernels never degrade below the tuned
// PR 4 behavior on machines where sysconf reports nothing.

#ifndef PREFDB_EXEC_HARDWARE_H_
#define PREFDB_EXEC_HARDWARE_H_

#include <cstddef>

namespace prefdb {

/// Detected per-core L2 data-cache size in bytes (sysconf on POSIX,
/// /sys/devices fallback on Linux), or 0 when undetectable.
size_t DetectedL2CacheBytes();

/// The byte budget the blocked BNL window loop sizes its tiles against:
/// half the detected L2 (the window shares the cache with the streamed
/// candidates and payload vectors), clamped to [128 KiB, 1 MiB]; when
/// detection fails, the tuned 256 KiB constant the PR 4 measurements
/// used.
size_t BnlTileBudgetBytes();

}  // namespace prefdb

#endif  // PREFDB_EXEC_HARDWARE_H_
