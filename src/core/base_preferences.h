// Non-numerical base preference constructors (Kießling Def. 6):
// POS, NEG, POS/NEG, POS/POS, EXPLICIT — plus the LAYERED generalization
// (an ordered list of disjoint "levels" of values; §3.4 sketches such a
// super-constructor, and Preference SQL's ELSE clause needs it).

#ifndef PREFDB_CORE_BASE_PREFERENCES_H_
#define PREFDB_CORE_BASE_PREFERENCES_H_

#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/preference.h"

namespace prefdb {

using ValueSet = std::unordered_set<Value, ValueHash>;

/// POS(A, POS-set): desired values are the positive values; any other value
/// is worse but acceptable (Def. 6a). POS-set values sit at level 1, all
/// others at level 2.
class PosPreference : public BasePreference {
 public:
  PosPreference(std::string attribute, std::vector<Value> pos_values);
  const ValueSet& pos_set() const { return pos_; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::optional<size_t> IntrinsicLevelOf(const Value& v) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  ValueSet pos_;
};

/// NEG(A, NEG-set): disliked values are worse than everything else
/// (Def. 6b). Non-NEG values are maximal; NEG values sit at level 2.
class NegPreference : public BasePreference {
 public:
  NegPreference(std::string attribute, std::vector<Value> neg_values);
  const ValueSet& neg_set() const { return neg_; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::optional<size_t> IntrinsicLevelOf(const Value& v) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  ValueSet neg_;
};

/// POS/NEG(A, POS-set; NEG-set): three levels — favorites, neutral values,
/// dislikes (Def. 6c). POS-set and NEG-set must be disjoint
/// (std::invalid_argument otherwise).
class PosNegPreference : public BasePreference {
 public:
  PosNegPreference(std::string attribute, std::vector<Value> pos_values,
                   std::vector<Value> neg_values);
  const ValueSet& pos_set() const { return pos_; }
  const ValueSet& neg_set() const { return neg_; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::optional<size_t> IntrinsicLevelOf(const Value& v) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  ValueSet pos_;
  ValueSet neg_;
};

/// POS/POS(A, POS1-set; POS2-set): favorites, second-best alternatives,
/// then everything else (Def. 6d). The sets must be disjoint.
class PosPosPreference : public BasePreference {
 public:
  PosPosPreference(std::string attribute, std::vector<Value> pos1_values,
                   std::vector<Value> pos2_values);
  const ValueSet& pos1_set() const { return pos1_; }
  const ValueSet& pos2_set() const { return pos2_; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::optional<size_t> IntrinsicLevelOf(const Value& v) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  ValueSet pos1_;
  ValueSet pos2_;
};

/// One 'better-than' edge of an EXPLICIT graph: `worse <E better`.
/// (The paper writes pairs (val_i, val_j) with val_i <E val_j.)
struct ExplicitEdge {
  Value worse;
  Value better;
};

/// EXPLICIT(A, EXPLICIT-graph): a hand-crafted finite acyclic 'better-than'
/// graph; values mentioned in the graph are better than all other domain
/// values (Def. 6e). A cyclic edge list raises std::invalid_argument.
class ExplicitPreference : public BasePreference {
 public:
  ExplicitPreference(std::string attribute, std::vector<ExplicitEdge> edges);
  const std::vector<ExplicitEdge>& edges() const { return edges_; }
  /// range(<E): all values mentioned in the graph (Def. 4).
  const ValueSet& graph_values() const { return range_; }
  /// Intrinsic level: longest chain above a value within the graph;
  /// values outside the graph sit one level below the deepest value.
  /// Precomputed at construction (the LEVEL quality function of §6.1).
  size_t LevelOf(const Value& v) const;
  /// True iff the graph order coincides with its level order, i.e. the
  /// graph is a weak order (the score-table compiler's dict-encoding
  /// precondition). Precomputed at construction.
  bool IsLevelOrder() const { return level_order_; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  std::vector<ExplicitEdge> edges_;
  ValueSet range_;
  // Transitive closure of <E as a set of (worse, better) pairs.
  struct PairHash {
    size_t operator()(const std::pair<Value, Value>& p) const {
      return p.first.Hash() * 1000003u ^ p.second.Hash();
    }
  };
  std::unordered_set<std::pair<Value, Value>, PairHash> closure_;
  std::unordered_map<Value, size_t, ValueHash> level_;
  size_t deepest_ = 0;
  bool level_order_ = true;
};

/// POS/NEG-GRAPHS(A, POS-graph; NEG-graph): the §3.4 super-constructor of
/// both POS/NEG and EXPLICIT — two hand-crafted acyclic 'better-than'
/// graphs assembled by linear sums in analogy to POS/NEG:
///     (POS-graph (+) other-values<->) (+) NEG-graph
/// Values in the POS-graph beat everything else (ordered among themselves
/// by the graph), unmentioned values sit in the middle (mutually
/// unranked), NEG-graph values are worst (again graph-ordered among
/// themselves). Isolated values can be added to either graph through the
/// extra node lists. The two graphs' value sets must be disjoint.
class PosNegGraphsPreference : public BasePreference {
 public:
  PosNegGraphsPreference(std::string attribute,
                         std::vector<ExplicitEdge> pos_edges,
                         std::vector<Value> pos_nodes,
                         std::vector<ExplicitEdge> neg_edges,
                         std::vector<Value> neg_nodes);
  const ValueSet& pos_range() const { return pos_range_; }
  const ValueSet& neg_range() const { return neg_range_; }
  const ExplicitPreference& pos_graph() const { return *pos_graph_; }
  const ExplicitPreference& neg_graph() const { return *neg_graph_; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  // Within-class orders (edge closures); class membership is decided by
  // the range sets which additionally include the isolated nodes.
  std::shared_ptr<const ExplicitPreference> pos_graph_;
  std::shared_ptr<const ExplicitPreference> neg_graph_;
  ValueSet pos_range_;
  ValueSet neg_range_;
};

PrefPtr PosNegGraphs(std::string attribute,
                     std::vector<ExplicitEdge> pos_edges,
                     std::vector<Value> pos_nodes,
                     std::vector<ExplicitEdge> neg_edges,
                     std::vector<Value> neg_nodes);

/// LAYERED(A, [L1, ..., Lk]): values in L1 are best, then L2, ..., then Lk,
/// then every unmentioned domain value (or, if one layer is marked as the
/// "others" layer, unmentioned values rank there). Layers must be disjoint.
/// This is the common super-constructor of POS, POS/POS and POS/NEG: e.g.
/// POS/NEG = LAYERED([POS-set, OTHERS, NEG-set]).
class LayeredPreference : public BasePreference {
 public:
  /// A layer is either an explicit value set or the distinguished OTHERS
  /// layer capturing all unmentioned values.
  struct Layer {
    std::vector<Value> values;
    bool is_others = false;
  };
  static Layer Others() { return Layer{{}, true}; }

  LayeredPreference(std::string attribute, std::vector<Layer> layers);
  size_t layer_count() const { return layers_.size(); }
  const std::vector<Layer>& layers() const { return layers_; }
  /// 1-based level of a value (lower is better).
  size_t LevelOf(const Value& v) const;
  bool LessValue(const Value& x, const Value& y) const override;
  std::optional<size_t> IntrinsicLevelOf(const Value& v) const override {
    return LevelOf(v);
  }
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  std::vector<Layer> layers_;
  std::unordered_map<Value, size_t, ValueHash> level_;  // explicit values
  size_t others_level_;                                 // level of OTHERS
};

// ---------------------------------------------------------------------------
// Factory functions (the public construction API).

PrefPtr Pos(std::string attribute, std::vector<Value> pos_values);
PrefPtr Neg(std::string attribute, std::vector<Value> neg_values);
PrefPtr PosNeg(std::string attribute, std::vector<Value> pos_values,
               std::vector<Value> neg_values);
PrefPtr PosPos(std::string attribute, std::vector<Value> pos1_values,
               std::vector<Value> pos2_values);
PrefPtr Explicit(std::string attribute, std::vector<ExplicitEdge> edges);
PrefPtr Layered(std::string attribute,
                std::vector<LayeredPreference::Layer> layers);

}  // namespace prefdb

#endif  // PREFDB_CORE_BASE_PREFERENCES_H_
