#include "core/preference.h"

#include <algorithm>
#include <stdexcept>

namespace prefdb {

const char* PreferenceKindName(PreferenceKind kind) {
  switch (kind) {
    case PreferenceKind::kPos: return "POS";
    case PreferenceKind::kNeg: return "NEG";
    case PreferenceKind::kPosNeg: return "POS/NEG";
    case PreferenceKind::kPosPos: return "POS/POS";
    case PreferenceKind::kExplicit: return "EXPLICIT";
    case PreferenceKind::kPosNegGraphs: return "POS/NEG-GRAPHS";
    case PreferenceKind::kLayered: return "LAYERED";
    case PreferenceKind::kAround: return "AROUND";
    case PreferenceKind::kBetween: return "BETWEEN";
    case PreferenceKind::kLowest: return "LOWEST";
    case PreferenceKind::kHighest: return "HIGHEST";
    case PreferenceKind::kScore: return "SCORE";
    case PreferenceKind::kPareto: return "PARETO";
    case PreferenceKind::kPrioritized: return "PRIORITIZED";
    case PreferenceKind::kRankF: return "RANK";
    case PreferenceKind::kIntersection: return "INTERSECTION";
    case PreferenceKind::kDisjointUnion: return "DISJOINT_UNION";
    case PreferenceKind::kLinearSum: return "LINEAR_SUM";
    case PreferenceKind::kDual: return "DUAL";
    case PreferenceKind::kSubset: return "SUBSET";
    case PreferenceKind::kAntiChain: return "ANTICHAIN";
  }
  return "?";
}

Preference::Preference(PreferenceKind kind,
                       std::vector<std::string> attributes)
    : kind_(kind), attributes_(std::move(attributes)) {
  if (attributes_.empty()) {
    throw std::invalid_argument("a preference needs a non-empty attribute set");
  }
  // Enforce set semantics: duplicate names collapse.
  std::vector<std::string> dedup;
  for (auto& a : attributes_) {
    if (std::find(dedup.begin(), dedup.end(), a) == dedup.end()) {
      dedup.push_back(a);
    }
  }
  attributes_ = std::move(dedup);
}

EqFn Preference::BindEquality(const Schema& schema) const {
  std::vector<size_t> cols;
  cols.reserve(attributes_.size());
  for (const auto& name : attributes_) {
    auto idx = schema.IndexOf(name);
    if (!idx) {
      throw std::out_of_range("attribute '" + name + "' not found in schema " +
                              schema.ToString());
    }
    cols.push_back(*idx);
  }
  return [cols](const Tuple& x, const Tuple& y) {
    for (size_t c : cols) {
      if (x[c] != y[c]) return false;
    }
    return true;
  };
}

bool Preference::StructurallyEquals(const Preference& other) const {
  if (kind_ != other.kind_) return false;
  if (!SameAttributeSet(attributes_, other.attributes_)) return false;
  auto a = children();
  auto b = other.children();
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i]->StructurallyEquals(*b[i])) return false;
  }
  return ParamsEqual(other);
}

BasePreference::BasePreference(PreferenceKind kind, std::string attribute)
    : Preference(kind, {std::move(attribute)}) {}

LessFn BasePreference::Bind(const Schema& schema) const {
  auto idx = schema.IndexOf(attribute());
  if (!idx) {
    throw std::out_of_range("attribute '" + attribute() +
                            "' not found in schema " + schema.ToString());
  }
  size_t col = *idx;
  // Capture a shared reference so the bound closure keeps the term alive
  // even when the caller drops its handle (e.g. `Pos(...)->Bind(s)`).
  auto self = std::static_pointer_cast<const BasePreference>(shared_from_this());
  return [self, col](const Tuple& x, const Tuple& y) {
    return self->LessValue(x[col], y[col]);
  };
}

std::function<bool(const Value&, const Value&)> BindValueLess(
    const PrefPtr& pref) {
  if (pref->attributes().size() != 1) {
    throw std::invalid_argument(
        "BindValueLess requires a single-attribute preference, got " +
        pref->ToString());
  }
  Schema schema({{pref->attributes()[0], ValueType::kString}});
  LessFn less = pref->Bind(schema);
  return [pref, less](const Value& x, const Value& y) {
    return less(Tuple({x}), Tuple({y}));
  };
}

std::vector<std::string> AttributeUnion(const std::vector<std::string>& a,
                                        const std::vector<std::string>& b) {
  std::vector<std::string> out = a;
  for (const auto& name : b) {
    if (std::find(out.begin(), out.end(), name) == out.end()) {
      out.push_back(name);
    }
  }
  return out;
}

bool SameAttributeSet(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& name : a) {
    if (std::find(b.begin(), b.end(), name) == b.end()) return false;
  }
  return true;
}

bool DisjointAttributeSets(const std::vector<std::string>& a,
                           const std::vector<std::string>& b) {
  for (const auto& name : a) {
    if (std::find(b.begin(), b.end(), name) != b.end()) return false;
  }
  return true;
}

}  // namespace prefdb
