#include "core/complex_preferences.h"

#include <stdexcept>
#include <unordered_set>

#include "core/base_preferences.h"

namespace prefdb {

// ---------------------------------------------------------------------------
// Pareto (Def. 8)

ParetoPreference::ParetoPreference(PrefPtr left, PrefPtr right)
    : Preference(PreferenceKind::kPareto,
                 AttributeUnion(left->attributes(), right->attributes())),
      left_(std::move(left)),
      right_(std::move(right)) {}

LessFn ParetoPreference::Bind(const Schema& schema) const {
  LessFn l1 = left_->Bind(schema);
  LessFn l2 = right_->Bind(schema);
  EqFn e1 = left_->BindEquality(schema);
  EqFn e2 = right_->BindEquality(schema);
  // x < y iff (x1 <P1 y1 and (x2 <P2 y2 or x2 = y2)) or
  //           (x2 <P2 y2 and (x1 <P1 y1 or x1 = y1))      (Def. 8)
  return [l1, l2, e1, e2](const Tuple& x, const Tuple& y) {
    bool b1 = l1(x, y);
    bool b2 = l2(x, y);
    return (b1 && (b2 || e2(x, y))) || (b2 && (b1 || e1(x, y)));
  };
}

std::optional<std::vector<ScoreFn>> ParetoPreference::BindSortKeys(
    const Schema& schema) const {
  // Sound only when each side reduces to a single numeric key: then the key
  // sum strictly increases along <P1(x)P2 (each component non-decreasing,
  // at least one strictly).
  auto k1 = left_->BindSortKeys(schema);
  auto k2 = right_->BindSortKeys(schema);
  if (!k1 || !k2 || k1->size() != 1 || k2->size() != 1) return std::nullopt;
  ScoreFn a = (*k1)[0], b = (*k2)[0];
  return std::vector<ScoreFn>{
      [a, b](const Tuple& t) { return a(t) + b(t); }};
}

std::string ParetoPreference::ToString() const {
  return "(" + left_->ToString() + " (x) " + right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Prioritized (Def. 9)

PrioritizedPreference::PrioritizedPreference(PrefPtr more_important,
                                             PrefPtr less_important)
    : Preference(PreferenceKind::kPrioritized,
                 AttributeUnion(more_important->attributes(),
                                less_important->attributes())),
      left_(std::move(more_important)),
      right_(std::move(less_important)) {}

LessFn PrioritizedPreference::Bind(const Schema& schema) const {
  LessFn l1 = left_->Bind(schema);
  LessFn l2 = right_->Bind(schema);
  EqFn e1 = left_->BindEquality(schema);
  // x < y iff x1 <P1 y1 or (x1 = y1 and x2 <P2 y2)        (Def. 9)
  return [l1, l2, e1](const Tuple& x, const Tuple& y) {
    return l1(x, y) || (e1(x, y) && l2(x, y));
  };
}

std::optional<std::vector<ScoreFn>> PrioritizedPreference::BindSortKeys(
    const Schema& schema) const {
  auto k1 = left_->BindSortKeys(schema);
  auto k2 = right_->BindSortKeys(schema);
  if (!k1 || !k2) return std::nullopt;
  std::vector<ScoreFn> keys = std::move(*k1);
  for (auto& k : *k2) keys.push_back(std::move(k));
  return keys;
}

bool PrioritizedPreference::IsChain() const {
  if (!left_->IsChain() || !right_->IsChain()) return false;
  // Prop. 3h assumes composable attribute sets; be conservative.
  return DisjointAttributeSets(left_->attributes(), right_->attributes()) ||
         SameAttributeSet(left_->attributes(), right_->attributes());
}

std::string PrioritizedPreference::ToString() const {
  return "(" + left_->ToString() + " & " + right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// rank(F) (Def. 10)

RankPreference::RankPreference(CombineFn combine, std::string function_name,
                               std::vector<PrefPtr> inputs)
    : Preference(PreferenceKind::kRankF,
                 [&inputs] {
                   if (inputs.empty()) {
                     throw std::invalid_argument("rank(F) needs inputs");
                   }
                   std::vector<std::string> attrs = inputs[0]->attributes();
                   for (size_t i = 1; i < inputs.size(); ++i) {
                     attrs = AttributeUnion(attrs, inputs[i]->attributes());
                   }
                   return attrs;
                 }()),
      combine_(std::move(combine)),
      name_(std::move(function_name)),
      inputs_(std::move(inputs)) {
  if (!combine_) {
    throw std::invalid_argument("rank(F) requires a combining function");
  }
}

ScoreFn RankPreference::BindUtility(const Schema& schema) const {
  std::vector<ScoreFn> scores;
  scores.reserve(inputs_.size());
  for (const auto& p : inputs_) {
    auto keys = p->BindSortKeys(schema);
    if (!keys || keys->size() != 1) {
      throw std::invalid_argument(
          "rank(F) input is not SCORE-compatible: " + p->ToString());
    }
    scores.push_back((*keys)[0]);
  }
  CombineFn combine = combine_;
  return [scores, combine](const Tuple& t) {
    std::vector<double> s;
    s.reserve(scores.size());
    for (const auto& f : scores) s.push_back(f(t));
    return combine(s);
  };
}

LessFn RankPreference::Bind(const Schema& schema) const {
  ScoreFn utility = BindUtility(schema);
  // x < y iff F(f1(x1), ..., fn(xn)) < F(f1(y1), ..., fn(yn))  (Def. 10)
  return [utility](const Tuple& x, const Tuple& y) {
    return utility(x) < utility(y);
  };
}

std::optional<std::vector<ScoreFn>> RankPreference::BindSortKeys(
    const Schema& schema) const {
  return std::vector<ScoreFn>{BindUtility(schema)};
}

std::string RankPreference::ToString() const {
  std::string out = "rank(" + name_ + ")(";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += inputs_[i]->ToString();
  }
  out += ")";
  return out;
}

bool RankPreference::ParamsEqual(const Preference& other) const {
  return name_ == dynamic_cast<const RankPreference&>(other).name_;
}

// ---------------------------------------------------------------------------
// Intersection (Def. 11a)

IntersectionPreference::IntersectionPreference(PrefPtr left, PrefPtr right)
    : Preference(PreferenceKind::kIntersection,
                 AttributeUnion(left->attributes(), right->attributes())),
      left_(std::move(left)),
      right_(std::move(right)) {
  if (!SameAttributeSet(left_->attributes(), right_->attributes())) {
    throw std::invalid_argument(
        "intersection aggregation requires identical attribute sets, got " +
        left_->ToString() + " vs " + right_->ToString());
  }
}

LessFn IntersectionPreference::Bind(const Schema& schema) const {
  LessFn l1 = left_->Bind(schema);
  LessFn l2 = right_->Bind(schema);
  return [l1, l2](const Tuple& x, const Tuple& y) {
    return l1(x, y) && l2(x, y);
  };
}

std::string IntersectionPreference::ToString() const {
  return "(" + left_->ToString() + " <> " + right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Disjoint union (Def. 11b)

DisjointUnionPreference::DisjointUnionPreference(PrefPtr left, PrefPtr right)
    : Preference(PreferenceKind::kDisjointUnion,
                 AttributeUnion(left->attributes(), right->attributes())),
      left_(std::move(left)),
      right_(std::move(right)) {}

LessFn DisjointUnionPreference::Bind(const Schema& schema) const {
  LessFn l1 = left_->Bind(schema);
  LessFn l2 = right_->Bind(schema);
  return [l1, l2](const Tuple& x, const Tuple& y) {
    return l1(x, y) || l2(x, y);
  };
}

bool DisjointUnionPreference::ValidateDisjointOn(
    const Schema& schema, const std::vector<Tuple>& sample) const {
  // range(<P1) and range(<P2) must not share a value combination (Def. 4).
  LessFn l1 = left_->Bind(schema);
  LessFn l2 = right_->Bind(schema);
  std::vector<bool> in_r1(sample.size(), false), in_r2(sample.size(), false);
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = 0; j < sample.size(); ++j) {
      if (i == j) continue;
      if (l1(sample[i], sample[j]) || l1(sample[j], sample[i])) {
        in_r1[i] = true;
      }
      if (l2(sample[i], sample[j]) || l2(sample[j], sample[i])) {
        in_r2[i] = true;
      }
    }
  }
  for (size_t i = 0; i < sample.size(); ++i) {
    if (in_r1[i] && in_r2[i]) return false;
  }
  return true;
}

std::string DisjointUnionPreference::ToString() const {
  return "(" + left_->ToString() + " + " + right_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// Linear sum (Def. 12)

LinearSumPreference::LinearSumPreference(std::string fused_attribute,
                                         PrefPtr left, PrefPtr right,
                                         MembershipFn in_left,
                                         MembershipFn in_right)
    : BasePreference(PreferenceKind::kLinearSum, std::move(fused_attribute)),
      left_(std::move(left)),
      right_(std::move(right)),
      in_left_(std::move(in_left)),
      in_right_(std::move(in_right)),
      left_less_(BindValueLess(left_)),
      right_less_(BindValueLess(right_)) {
  if (!in_left_ || !in_right_) {
    throw std::invalid_argument("linear sum requires membership predicates");
  }
}

bool LinearSumPreference::LessValue(const Value& x, const Value& y) const {
  // x < y iff x <P1 y or x <P2 y or (x in dom(A2) and y in dom(A1))
  // where the component orders only apply within their own domain (Def. 12).
  bool x1 = in_left_(x), y1 = in_left_(y);
  bool x2 = in_right_(x), y2 = in_right_(y);
  if (x1 && y1 && left_less_(x, y)) return true;
  if (x2 && y2 && right_less_(x, y)) return true;
  return x2 && y1;
}

std::string LinearSumPreference::ToString() const {
  return "(" + left_->ToString() + " (+) " + right_->ToString() + " as " +
         attribute() + ")";
}

// ---------------------------------------------------------------------------
// Dual (Def. 3c)

DualPreference::DualPreference(PrefPtr inner)
    : Preference(PreferenceKind::kDual, inner->attributes()),
      inner_(std::move(inner)) {}

LessFn DualPreference::Bind(const Schema& schema) const {
  LessFn less = inner_->Bind(schema);
  return [less](const Tuple& x, const Tuple& y) { return less(y, x); };
}

std::optional<std::vector<ScoreFn>> DualPreference::BindSortKeys(
    const Schema& schema) const {
  auto keys = inner_->BindSortKeys(schema);
  if (!keys) return std::nullopt;
  std::vector<ScoreFn> out;
  out.reserve(keys->size());
  for (auto& k : *keys) {
    out.push_back([k](const Tuple& t) { return -k(t); });
  }
  return out;
}

std::string DualPreference::ToString() const {
  return inner_->ToString() + "^d";
}

// ---------------------------------------------------------------------------
// Subset (Def. 3d)

SubsetPreference::SubsetPreference(PrefPtr inner, std::vector<Tuple> subset)
    : Preference(PreferenceKind::kSubset, inner->attributes()),
      inner_(std::move(inner)),
      subset_(std::move(subset)) {
  for (const Tuple& t : subset_) {
    if (t.size() != attributes().size()) {
      throw std::invalid_argument(
          "subset tuples must cover exactly the preference's attributes");
    }
    member_.insert(t);
  }
}

LessFn SubsetPreference::Bind(const Schema& schema) const {
  LessFn less = inner_->Bind(schema);
  std::vector<size_t> cols;
  for (const auto& name : attributes()) {
    auto idx = schema.IndexOf(name);
    if (!idx) {
      throw std::out_of_range("attribute '" + name + "' not found in schema");
    }
    cols.push_back(*idx);
  }
  auto self =
      std::static_pointer_cast<const SubsetPreference>(shared_from_this());
  return [less, cols, self](const Tuple& x, const Tuple& y) {
    return self->member_.count(x.Project(cols)) &&
           self->member_.count(y.Project(cols)) && less(x, y);
  };
}

std::string SubsetPreference::ToString() const {
  return inner_->ToString() + "|S(" + std::to_string(subset_.size()) + ")";
}

// ---------------------------------------------------------------------------
// Anti-chain (Def. 3b)

AntiChainPreference::AntiChainPreference(std::vector<std::string> attributes)
    : Preference(PreferenceKind::kAntiChain, std::move(attributes)) {}

LessFn AntiChainPreference::Bind(const Schema& schema) const {
  // Validate that the attributes resolve even though the order is empty.
  (void)BindEquality(schema);
  return [](const Tuple&, const Tuple&) { return false; };
}

std::optional<std::vector<ScoreFn>> AntiChainPreference::BindSortKeys(
    const Schema& schema) const {
  (void)schema;
  return std::vector<ScoreFn>{[](const Tuple&) { return 0.0; }};
}

std::string AntiChainPreference::ToString() const {
  std::string out = "ANTICHAIN({";
  for (size_t i = 0; i < attributes().size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes()[i];
  }
  out += "})";
  return out;
}

// ---------------------------------------------------------------------------
// Factories

PrefPtr Pareto(PrefPtr left, PrefPtr right) {
  return std::make_shared<ParetoPreference>(std::move(left), std::move(right));
}

PrefPtr Pareto(std::vector<PrefPtr> prefs) {
  if (prefs.empty()) throw std::invalid_argument("Pareto needs >= 1 input");
  PrefPtr acc = prefs[0];
  for (size_t i = 1; i < prefs.size(); ++i) acc = Pareto(acc, prefs[i]);
  return acc;
}

PrefPtr Prioritized(PrefPtr more_important, PrefPtr less_important) {
  return std::make_shared<PrioritizedPreference>(std::move(more_important),
                                                 std::move(less_important));
}

PrefPtr Prioritized(std::vector<PrefPtr> prefs) {
  if (prefs.empty()) {
    throw std::invalid_argument("Prioritized needs >= 1 input");
  }
  PrefPtr acc = prefs[0];
  for (size_t i = 1; i < prefs.size(); ++i) acc = Prioritized(acc, prefs[i]);
  return acc;
}

PrefPtr Rank(RankPreference::CombineFn combine, std::string function_name,
             std::vector<PrefPtr> inputs) {
  return std::make_shared<RankPreference>(std::move(combine),
                                          std::move(function_name),
                                          std::move(inputs));
}

PrefPtr RankWeightedSum(std::vector<double> weights,
                        std::vector<PrefPtr> inputs) {
  if (weights.size() != inputs.size()) {
    throw std::invalid_argument("weights/inputs arity mismatch");
  }
  std::string name = "wsum[";
  for (size_t i = 0; i < weights.size(); ++i) {
    if (i > 0) name += ",";
    name += std::to_string(weights[i]);
  }
  name += "]";
  return Rank(
      [weights](const std::vector<double>& s) {
        double acc = 0;
        for (size_t i = 0; i < s.size(); ++i) acc += weights[i] * s[i];
        return acc;
      },
      std::move(name), std::move(inputs));
}

PrefPtr Intersection(PrefPtr left, PrefPtr right) {
  return std::make_shared<IntersectionPreference>(std::move(left),
                                                  std::move(right));
}

PrefPtr DisjointUnion(PrefPtr left, PrefPtr right) {
  return std::make_shared<DisjointUnionPreference>(std::move(left),
                                                   std::move(right));
}

PrefPtr LinearSum(std::string fused_attribute, PrefPtr left, PrefPtr right,
                  LinearSumPreference::MembershipFn in_left,
                  LinearSumPreference::MembershipFn in_right) {
  return std::make_shared<LinearSumPreference>(
      std::move(fused_attribute), std::move(left), std::move(right),
      std::move(in_left), std::move(in_right));
}

PrefPtr LinearSum(std::string fused_attribute, PrefPtr left, PrefPtr right,
                  std::vector<Value> left_domain,
                  std::vector<Value> right_domain) {
  auto lset = std::make_shared<ValueSet>();
  auto rset = std::make_shared<ValueSet>();
  for (auto& v : left_domain) lset->insert(std::move(v));
  for (auto& v : right_domain) rset->insert(std::move(v));
  return LinearSum(
      std::move(fused_attribute), std::move(left), std::move(right),
      [lset](const Value& v) { return lset->count(v) > 0; },
      [rset](const Value& v) { return rset->count(v) > 0; });
}

PrefPtr Dual(PrefPtr inner) {
  return std::make_shared<DualPreference>(std::move(inner));
}

PrefPtr Subset(PrefPtr inner, std::vector<Tuple> subset) {
  return std::make_shared<SubsetPreference>(std::move(inner),
                                            std::move(subset));
}

PrefPtr AntiChain(std::vector<std::string> attributes) {
  return std::make_shared<AntiChainPreference>(std::move(attributes));
}

PrefPtr AntiChain(std::string attribute) {
  return AntiChain(std::vector<std::string>{std::move(attribute)});
}

}  // namespace prefdb
