// Numerical base preference constructors (Kießling Def. 7): AROUND,
// BETWEEN, LOWEST, HIGHEST, SCORE. All of them are order-defined through a
// numeric utility ("x <P y iff score(x) < score(y)"), which realizes the
// §3.4 hierarchy AROUND ≼ BETWEEN ≼ SCORE, LOWEST/HIGHEST ≼ SCORE directly
// in code: every numerical base preference *is a* ScoredBasePreference.
//
// Domain convention: values that have no numeric view (NULL, strings in a
// numeric column) are mapped to -infinity, i.e. they are worse than every
// numeric value and mutually unranked.

#ifndef PREFDB_CORE_NUMERIC_PREFERENCES_H_
#define PREFDB_CORE_NUMERIC_PREFERENCES_H_

#include <functional>
#include <limits>
#include <string>

#include "core/preference.h"

namespace prefdb {

/// Common base: a single-attribute preference whose order is induced by a
/// scoring function f: dom(A) -> R with x <P y iff f(x) < f(y) (Def. 7d).
class ScoredBasePreference : public BasePreference {
 public:
  /// The inducing score of a value; non-numeric values score -infinity
  /// unless the concrete constructor overrides this.
  virtual double ScoreOf(const Value& v) const = 0;

  bool LessValue(const Value& x, const Value& y) const override {
    return ScoreOf(x) < ScoreOf(y);
  }

  std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const override;

 protected:
  using BasePreference::BasePreference;

  static double NumericOr(const Value& v, double fallback) {
    auto n = v.numeric();
    return n ? *n : fallback;
  }
  static constexpr double kWorst = -std::numeric_limits<double>::infinity();
};

/// AROUND(A, z): prefer values closest to z; ties in distance are unranked
/// (Def. 7a). Score is -|v - z|.
class AroundPreference : public ScoredBasePreference {
 public:
  AroundPreference(std::string attribute, double target);
  double target() const { return target_; }
  /// distance(v, z) = |v - z|; +infinity for non-numeric values.
  double Distance(const Value& v) const;
  double ScoreOf(const Value& v) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  double target_;
};

/// BETWEEN(A, [low, up]): prefer values inside the interval; outside values
/// rank by distance to the nearest bound (Def. 7b). Requires low <= up.
class BetweenPreference : public ScoredBasePreference {
 public:
  BetweenPreference(std::string attribute, double low, double up);
  double low() const { return low_; }
  double up() const { return up_; }
  /// distance(v, [low, up]) per Def. 7b; +infinity for non-numerics.
  double Distance(const Value& v) const;
  double ScoreOf(const Value& v) const override;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  double low_;
  double up_;
};

/// LOWEST(A): the lower the better (Def. 7c); a chain on numeric domains.
class LowestPreference : public ScoredBasePreference {
 public:
  explicit LowestPreference(std::string attribute);
  double ScoreOf(const Value& v) const override;
  bool IsChain() const override { return true; }
  std::string ToString() const override;
};

/// HIGHEST(A): the higher the better (Def. 7c); a chain on numeric domains.
class HighestPreference : public ScoredBasePreference {
 public:
  explicit HighestPreference(std::string attribute);
  double ScoreOf(const Value& v) const override;
  bool IsChain() const override { return true; }
  std::string ToString() const override;
};

/// SCORE(A, f): order induced by an arbitrary scoring function (Def. 7d).
/// Need not be a chain if f is not injective. The name identifies the
/// function for term rendering and structural equality.
class ScorePreference : public ScoredBasePreference {
 public:
  ScorePreference(std::string attribute, std::function<double(const Value&)> f,
                  std::string function_name);
  const std::string& function_name() const { return name_; }
  double ScoreOf(const Value& v) const override { return f_(v); }
  std::string ToString() const override;

 protected:
  /// Structural equality of SCORE terms compares function *names* (C++
  /// function objects are not comparable); callers must keep names unique
  /// per distinct function.
  bool ParamsEqual(const Preference& other) const override;

 private:
  std::function<double(const Value&)> f_;
  std::string name_;
};

// ---------------------------------------------------------------------------
// Factory functions.

PrefPtr Around(std::string attribute, double target);
PrefPtr Between(std::string attribute, double low, double up);
PrefPtr Lowest(std::string attribute);
PrefPtr Highest(std::string attribute);
PrefPtr Score(std::string attribute, std::function<double(const Value&)> f,
              std::string function_name);

}  // namespace prefdb

#endif  // PREFDB_CORE_NUMERIC_PREFERENCES_H_
