#include "core/hierarchy.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

namespace prefdb {

namespace {

using K = PreferenceKind;

// Direct ≼ edges of the §3.4 hierarchy figure (plus LAYERED edges).
const std::multimap<K, K>& DirectEdges() {
  static const std::multimap<K, K> edges = {
      {K::kPos, K::kPosPos},       {K::kPos, K::kPosNeg},
      {K::kNeg, K::kPosNeg},       {K::kPosPos, K::kExplicit},
      {K::kPosNeg, K::kPosNegGraphs},
      {K::kExplicit, K::kPosNegGraphs},
      {K::kPos, K::kLayered},      {K::kNeg, K::kLayered},
      {K::kPosNeg, K::kLayered},   {K::kPosPos, K::kLayered},
      {K::kAround, K::kBetween},   {K::kBetween, K::kScore},
      {K::kLowest, K::kScore},     {K::kHighest, K::kScore},
      {K::kIntersection, K::kPareto},
      {K::kPrioritized, K::kRankF},
  };
  return edges;
}

}  // namespace

bool IsSubConstructorOf(PreferenceKind sub, PreferenceKind super) {
  if (sub == super) return true;
  // DFS over the direct edges (the graph is tiny and acyclic).
  std::set<K> seen;
  std::vector<K> stack = {sub};
  while (!stack.empty()) {
    K cur = stack.back();
    stack.pop_back();
    if (cur == super) return true;
    if (!seen.insert(cur).second) continue;
    auto [lo, hi] = DirectEdges().equal_range(cur);
    for (auto it = lo; it != hi; ++it) stack.push_back(it->second);
  }
  return false;
}

PrefPtr PosAsPosPos(const PosPreference& p) {
  std::vector<Value> pos1(p.pos_set().begin(), p.pos_set().end());
  return PosPos(p.attribute(), std::move(pos1), {});
}

PrefPtr PosAsPosNeg(const PosPreference& p) {
  std::vector<Value> pos(p.pos_set().begin(), p.pos_set().end());
  return PosNeg(p.attribute(), std::move(pos), {});
}

PrefPtr NegAsPosNeg(const NegPreference& p) {
  std::vector<Value> neg(p.neg_set().begin(), p.neg_set().end());
  return PosNeg(p.attribute(), {}, std::move(neg));
}

PrefPtr PosPosAsExplicit(const PosPosPreference& p) {
  std::vector<ExplicitEdge> edges;
  for (const Value& worse : p.pos2_set()) {
    for (const Value& better : p.pos1_set()) {
      edges.push_back({worse, better});
    }
  }
  // Degenerate cases: one of the sets empty means there is no edge, but the
  // graph must still mention the values so they beat the "other" values.
  // EXPLICIT as defined needs edges to carry values, so POS/POS with an
  // empty POS2-set converts only when POS1 is a singleton-free... we model
  // it with a synthetic self-consistent trick: pair every pos1 value above
  // every pos2 value; when pos2 is empty, EXPLICIT cannot express the
  // 2-level structure and we fall back to chaining pos1 values above a
  // sentinel-free empty graph, which is only equivalent when pos2 is empty
  // AND pos1 values dominate others — that needs at least one edge. The
  // clean equivalence (used by hierarchy_test) holds when both sets are
  // non-empty; callers with empty sets should use PosAsPosPos first.
  return Explicit(p.attribute(), std::move(edges));
}

PrefPtr PosNegAsGraphs(const PosNegPreference& p) {
  return PosNegGraphs(
      p.attribute(), {},
      std::vector<Value>(p.pos_set().begin(), p.pos_set().end()), {},
      std::vector<Value>(p.neg_set().begin(), p.neg_set().end()));
}

PrefPtr ExplicitAsGraphs(const ExplicitPreference& p) {
  return PosNegGraphs(p.attribute(), p.edges(), {}, {}, {});
}

PrefPtr PosAsLayered(const PosPreference& p) {
  std::vector<Value> pos(p.pos_set().begin(), p.pos_set().end());
  return Layered(p.attribute(),
                 {LayeredPreference::Layer{std::move(pos), false},
                  LayeredPreference::Others()});
}

PrefPtr NegAsLayered(const NegPreference& p) {
  std::vector<Value> neg(p.neg_set().begin(), p.neg_set().end());
  return Layered(p.attribute(),
                 {LayeredPreference::Others(),
                  LayeredPreference::Layer{std::move(neg), false}});
}

PrefPtr PosNegAsLayered(const PosNegPreference& p) {
  std::vector<Value> pos(p.pos_set().begin(), p.pos_set().end());
  std::vector<Value> neg(p.neg_set().begin(), p.neg_set().end());
  return Layered(p.attribute(),
                 {LayeredPreference::Layer{std::move(pos), false},
                  LayeredPreference::Others(),
                  LayeredPreference::Layer{std::move(neg), false}});
}

PrefPtr PosPosAsLayered(const PosPosPreference& p) {
  std::vector<Value> pos1(p.pos1_set().begin(), p.pos1_set().end());
  std::vector<Value> pos2(p.pos2_set().begin(), p.pos2_set().end());
  return Layered(p.attribute(),
                 {LayeredPreference::Layer{std::move(pos1), false},
                  LayeredPreference::Layer{std::move(pos2), false},
                  LayeredPreference::Others()});
}

PrefPtr AroundAsBetween(const AroundPreference& p) {
  return Between(p.attribute(), p.target(), p.target());
}

PrefPtr BetweenAsScore(const BetweenPreference& p) {
  double low = p.low(), up = p.up();
  return Score(
      p.attribute(),
      [low, up](const Value& v) {
        auto n = v.numeric();
        if (!n) return -std::numeric_limits<double>::infinity();
        if (*n < low) return -(low - *n);
        if (*n > up) return -(*n - up);
        return 0.0;
      },
      "-distance([" + std::to_string(low) + "," + std::to_string(up) + "])");
}

PrefPtr AroundAsScore(const AroundPreference& p) {
  double z = p.target();
  return Score(
      p.attribute(),
      [z](const Value& v) {
        auto n = v.numeric();
        if (!n) return -std::numeric_limits<double>::infinity();
        return -std::abs(*n - z);
      },
      "-distance(" + std::to_string(z) + ")");
}

PrefPtr LowestAsScore(const LowestPreference& p) {
  return Score(
      p.attribute(),
      [](const Value& v) {
        auto n = v.numeric();
        return n ? -*n : -std::numeric_limits<double>::infinity();
      },
      "-x");
}

PrefPtr HighestAsScore(const HighestPreference& p) {
  return Score(
      p.attribute(),
      [](const Value& v) {
        auto n = v.numeric();
        return n ? *n : -std::numeric_limits<double>::infinity();
      },
      "x");
}

PrefPtr IntersectionAsPareto(const IntersectionPreference& p) {
  return Pareto(p.left(), p.right());
}

PrefPtr PrioritizedAsRankOnSample(const PrefPtr& p1, const PrefPtr& p2,
                                  const Schema& schema,
                                  const std::vector<Tuple>& sample) {
  auto k1 = p1->BindSortKeys(schema);
  auto k2 = p2->BindSortKeys(schema);
  if (!k1 || !k2 || k1->size() != 1 || k2->size() != 1) return nullptr;
  ScoreFn s1 = (*k1)[0], s2 = (*k2)[0];
  EqFn eq1 = p1->BindEquality(schema);

  // Injectivity of s1 over distinct P1-attribute values on the sample, and
  // the smallest positive s1 gap / the s2 spread.
  std::vector<double> v1, v2;
  for (const Tuple& t : sample) {
    v1.push_back(s1(t));
    v2.push_back(s2(t));
  }
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = 0; j < sample.size(); ++j) {
      if (v1[i] == v1[j] && !eq1(sample[i], sample[j])) {
        return nullptr;  // s1 not injective w.r.t. P1-attribute values
      }
    }
  }
  double min_gap = std::numeric_limits<double>::infinity();
  double spread = 0;
  for (size_t i = 0; i < sample.size(); ++i) {
    for (size_t j = 0; j < sample.size(); ++j) {
      double d1 = std::abs(v1[i] - v1[j]);
      if (d1 > 0) min_gap = std::min(min_gap, d1);
      spread = std::max(spread, std::abs(v2[i] - v2[j]));
    }
  }
  double weight = std::isfinite(min_gap) && min_gap > 0
                      ? (spread / min_gap) * 2.0 + 1.0
                      : 1.0;
  return Rank(
      [weight](const std::vector<double>& s) {
        return weight * s[0] + s[1];
      },
      "lexicographic[" + std::to_string(weight) + "]", {p1, p2});
}

}  // namespace prefdb
