// Sub-constructor hierarchy (Kießling §3.4): C1 is a *sub-constructor* of
// C2 (C1 ≼ C2) when every C1 preference can be written as a C2 preference
// with specializing constraints. This module provides (a) the static
// taxonomy, and (b) the witness conversions that rewrite a preference into
// its super-constructor form — the test suite verifies semantic
// equivalence (Def. 13) of each conversion, which proves the ≼ claims.

#ifndef PREFDB_CORE_HIERARCHY_H_
#define PREFDB_CORE_HIERARCHY_H_

#include "core/base_preferences.h"
#include "core/complex_preferences.h"
#include "core/numeric_preferences.h"

namespace prefdb {

/// True iff `sub` ≼ `super` in the §3.4 taxonomy (reflexive-transitive):
///   POS ≼ POS/POS ≼ EXPLICIT, POS ≼ POS/NEG, NEG ≼ POS/NEG,
///   AROUND ≼ BETWEEN ≼ SCORE, LOWEST ≼ SCORE, HIGHEST ≼ SCORE,
///   INTERSECTION ≼ PARETO, PRIORITIZED ≼ RANK (for chains, see below),
///   and the LAYERED generalizations POS/POS ≼ LAYERED, POS/NEG ≼ LAYERED,
///   POS ≼ LAYERED, NEG ≼ LAYERED.
bool IsSubConstructorOf(PreferenceKind sub, PreferenceKind super);

// --- Witness conversions (each returns a term of the super-constructor
// --- that is semantically equivalent to the input; see hierarchy_test).

/// POS ≼ POS/POS with POS2-set = {}.
PrefPtr PosAsPosPos(const PosPreference& p);
/// POS ≼ POS/NEG with NEG-set = {}.
PrefPtr PosAsPosNeg(const PosPreference& p);
/// NEG ≼ POS/NEG with POS-set = {}.
PrefPtr NegAsPosNeg(const NegPreference& p);
/// POS/POS ≼ EXPLICIT with EXPLICIT-graph = POS1-set^<-> (+) POS2-set^<->
/// (every POS2 value is an edge below every POS1 value).
PrefPtr PosPosAsExplicit(const PosPosPreference& p);
/// POS/NEG ≼ POS/NEG-GRAPHS with two edgeless graphs (§3.4 remark).
PrefPtr PosNegAsGraphs(const PosNegPreference& p);
/// EXPLICIT ≼ POS/NEG-GRAPHS with an empty NEG-graph.
PrefPtr ExplicitAsGraphs(const ExplicitPreference& p);
/// POS, NEG, POS/NEG, POS/POS ≼ LAYERED.
PrefPtr PosAsLayered(const PosPreference& p);
PrefPtr NegAsLayered(const NegPreference& p);
PrefPtr PosNegAsLayered(const PosNegPreference& p);
PrefPtr PosPosAsLayered(const PosPosPreference& p);
/// AROUND ≼ BETWEEN with low = up = z.
PrefPtr AroundAsBetween(const AroundPreference& p);
/// BETWEEN ≼ SCORE with f(x) = -distance(x, [low, up]).
PrefPtr BetweenAsScore(const BetweenPreference& p);
/// AROUND ≼ SCORE (composition of the two steps above).
PrefPtr AroundAsScore(const AroundPreference& p);
/// LOWEST ≼ SCORE with f(x) = -x; HIGHEST ≼ SCORE with f(x) = x.
PrefPtr LowestAsScore(const LowestPreference& p);
PrefPtr HighestAsScore(const HighestPreference& p);
/// '<>' ≼ '(x)': a same-attribute-set Pareto preference collapses to the
/// intersection of its components (Prop. 6); conversely any intersection is
/// the Pareto accumulation of its components over the shared attributes.
PrefPtr IntersectionAsPareto(const IntersectionPreference& p);

/// '&' ≼ rank(F) on a finite sample: determines a weighted sum
/// F = K*s1 + s2 that reproduces P1 & P2 on the sample, where both inputs
/// expose single sort keys, s1 is injective over the sample's P1-attribute
/// values, and K exceeds the s2 spread divided by the smallest positive s1
/// gap. Returns nullptr when no such weighting exists on the sample (e.g.
/// non-injective s1).
PrefPtr PrioritizedAsRankOnSample(const PrefPtr& p1, const PrefPtr& p2,
                                  const Schema& schema,
                                  const std::vector<Tuple>& sample);

}  // namespace prefdb

#endif  // PREFDB_CORE_HIERARCHY_H_
