#include "core/numeric_preferences.h"

#include <cmath>
#include <stdexcept>

namespace prefdb {

namespace {

std::string Num(double d) {
  if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
    return std::to_string(static_cast<int64_t>(d));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

}  // namespace

std::optional<std::vector<ScoreFn>> ScoredBasePreference::BindSortKeys(
    const Schema& schema) const {
  auto idx = schema.IndexOf(attribute());
  if (!idx) {
    throw std::out_of_range("attribute '" + attribute() +
                            "' not found in schema " + schema.ToString());
  }
  size_t col = *idx;
  auto self =
      std::static_pointer_cast<const ScoredBasePreference>(shared_from_this());
  return std::vector<ScoreFn>{
      [self, col](const Tuple& t) { return self->ScoreOf(t[col]); }};
}

// ---------------------------------------------------------------------------
// AROUND

AroundPreference::AroundPreference(std::string attribute, double target)
    : ScoredBasePreference(PreferenceKind::kAround, std::move(attribute)),
      target_(target) {}

double AroundPreference::Distance(const Value& v) const {
  auto n = v.numeric();
  if (!n) return std::numeric_limits<double>::infinity();
  return std::abs(*n - target_);
}

double AroundPreference::ScoreOf(const Value& v) const {
  return -Distance(v);
}

std::string AroundPreference::ToString() const {
  return "AROUND(" + attribute() + ", " + Num(target_) + ")";
}

bool AroundPreference::ParamsEqual(const Preference& other) const {
  return target_ == dynamic_cast<const AroundPreference&>(other).target_;
}

// ---------------------------------------------------------------------------
// BETWEEN

BetweenPreference::BetweenPreference(std::string attribute, double low,
                                     double up)
    : ScoredBasePreference(PreferenceKind::kBetween, std::move(attribute)),
      low_(low),
      up_(up) {
  if (low > up) {
    throw std::invalid_argument("BETWEEN requires low <= up");
  }
}

double BetweenPreference::Distance(const Value& v) const {
  auto n = v.numeric();
  if (!n) return std::numeric_limits<double>::infinity();
  if (*n < low_) return low_ - *n;
  if (*n > up_) return *n - up_;
  return 0.0;
}

double BetweenPreference::ScoreOf(const Value& v) const {
  return -Distance(v);
}

std::string BetweenPreference::ToString() const {
  return "BETWEEN(" + attribute() + ", [" + Num(low_) + ", " + Num(up_) + "])";
}

bool BetweenPreference::ParamsEqual(const Preference& other) const {
  const auto& o = dynamic_cast<const BetweenPreference&>(other);
  return low_ == o.low_ && up_ == o.up_;
}

// ---------------------------------------------------------------------------
// LOWEST / HIGHEST

LowestPreference::LowestPreference(std::string attribute)
    : ScoredBasePreference(PreferenceKind::kLowest, std::move(attribute)) {}

double LowestPreference::ScoreOf(const Value& v) const {
  return -NumericOr(v, -kWorst);  // non-numeric -> -(+inf) -> kWorst
}

std::string LowestPreference::ToString() const {
  return "LOWEST(" + attribute() + ")";
}

HighestPreference::HighestPreference(std::string attribute)
    : ScoredBasePreference(PreferenceKind::kHighest, std::move(attribute)) {}

double HighestPreference::ScoreOf(const Value& v) const {
  return NumericOr(v, kWorst);
}

std::string HighestPreference::ToString() const {
  return "HIGHEST(" + attribute() + ")";
}

// ---------------------------------------------------------------------------
// SCORE

ScorePreference::ScorePreference(std::string attribute,
                                 std::function<double(const Value&)> f,
                                 std::string function_name)
    : ScoredBasePreference(PreferenceKind::kScore, std::move(attribute)),
      f_(std::move(f)),
      name_(std::move(function_name)) {
  if (!f_) throw std::invalid_argument("SCORE requires a scoring function");
}

std::string ScorePreference::ToString() const {
  return "SCORE(" + attribute() + ", " + name_ + ")";
}

bool ScorePreference::ParamsEqual(const Preference& other) const {
  return name_ == dynamic_cast<const ScorePreference&>(other).name_;
}

// ---------------------------------------------------------------------------
// Factories

PrefPtr Around(std::string attribute, double target) {
  return std::make_shared<AroundPreference>(std::move(attribute), target);
}

PrefPtr Between(std::string attribute, double low, double up) {
  return std::make_shared<BetweenPreference>(std::move(attribute), low, up);
}

PrefPtr Lowest(std::string attribute) {
  return std::make_shared<LowestPreference>(std::move(attribute));
}

PrefPtr Highest(std::string attribute) {
  return std::make_shared<HighestPreference>(std::move(attribute));
}

PrefPtr Score(std::string attribute, std::function<double(const Value&)> f,
              std::string function_name) {
  return std::make_shared<ScorePreference>(std::move(attribute), std::move(f),
                                           std::move(function_name));
}

}  // namespace prefdb
