#include "core/base_preferences.h"

#include <algorithm>
#include <stdexcept>

namespace prefdb {

namespace {

ValueSet ToSet(std::vector<Value> values) {
  ValueSet out;
  for (auto& v : values) out.insert(std::move(v));
  return out;
}

bool Disjoint(const ValueSet& a, const ValueSet& b) {
  const ValueSet& small = a.size() <= b.size() ? a : b;
  const ValueSet& large = a.size() <= b.size() ? b : a;
  for (const Value& v : small) {
    if (large.count(v)) return false;
  }
  return true;
}

std::string SetToString(const ValueSet& s) {
  // Sort for deterministic rendering.
  std::vector<Value> values(s.begin(), s.end());
  std::sort(values.begin(), values.end());
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToString();
  }
  out += "}";
  return out;
}

bool SameSet(const ValueSet& a, const ValueSet& b) {
  if (a.size() != b.size()) return false;
  for (const Value& v : a) {
    if (!b.count(v)) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// POS

PosPreference::PosPreference(std::string attribute,
                             std::vector<Value> pos_values)
    : BasePreference(PreferenceKind::kPos, std::move(attribute)),
      pos_(ToSet(std::move(pos_values))) {}

bool PosPreference::LessValue(const Value& x, const Value& y) const {
  // x <P y iff x not in POS-set and y in POS-set (Def. 6a).
  return !pos_.count(x) && pos_.count(y) > 0;
}

std::optional<size_t> PosPreference::IntrinsicLevelOf(const Value& v) const {
  return pos_.count(v) ? 1 : 2;
}

std::string PosPreference::ToString() const {
  return "POS(" + attribute() + ", " + SetToString(pos_) + ")";
}

bool PosPreference::ParamsEqual(const Preference& other) const {
  return SameSet(pos_, dynamic_cast<const PosPreference&>(other).pos_);
}

// ---------------------------------------------------------------------------
// NEG

NegPreference::NegPreference(std::string attribute,
                             std::vector<Value> neg_values)
    : BasePreference(PreferenceKind::kNeg, std::move(attribute)),
      neg_(ToSet(std::move(neg_values))) {}

bool NegPreference::LessValue(const Value& x, const Value& y) const {
  // x <P y iff y not in NEG-set and x in NEG-set (Def. 6b).
  return neg_.count(x) > 0 && !neg_.count(y);
}

std::optional<size_t> NegPreference::IntrinsicLevelOf(const Value& v) const {
  return neg_.count(v) ? 2 : 1;
}

std::string NegPreference::ToString() const {
  return "NEG(" + attribute() + ", " + SetToString(neg_) + ")";
}

bool NegPreference::ParamsEqual(const Preference& other) const {
  return SameSet(neg_, dynamic_cast<const NegPreference&>(other).neg_);
}

// ---------------------------------------------------------------------------
// POS/NEG

PosNegPreference::PosNegPreference(std::string attribute,
                                   std::vector<Value> pos_values,
                                   std::vector<Value> neg_values)
    : BasePreference(PreferenceKind::kPosNeg, std::move(attribute)),
      pos_(ToSet(std::move(pos_values))),
      neg_(ToSet(std::move(neg_values))) {
  if (!Disjoint(pos_, neg_)) {
    throw std::invalid_argument(
        "POS/NEG requires disjoint POS-set and NEG-set");
  }
}

bool PosNegPreference::LessValue(const Value& x, const Value& y) const {
  // (x in NEG and y not in NEG) or
  // (x neutral and y in POS)                      (Def. 6c).
  if (neg_.count(x) && !neg_.count(y)) return true;
  return !neg_.count(x) && !pos_.count(x) && pos_.count(y) > 0;
}

std::optional<size_t> PosNegPreference::IntrinsicLevelOf(
    const Value& v) const {
  if (pos_.count(v)) return 1;
  if (neg_.count(v)) return 3;
  return 2;
}

std::string PosNegPreference::ToString() const {
  return "POS/NEG(" + attribute() + ", " + SetToString(pos_) + "; " +
         SetToString(neg_) + ")";
}

bool PosNegPreference::ParamsEqual(const Preference& other) const {
  const auto& o = dynamic_cast<const PosNegPreference&>(other);
  return SameSet(pos_, o.pos_) && SameSet(neg_, o.neg_);
}

// ---------------------------------------------------------------------------
// POS/POS

PosPosPreference::PosPosPreference(std::string attribute,
                                   std::vector<Value> pos1_values,
                                   std::vector<Value> pos2_values)
    : BasePreference(PreferenceKind::kPosPos, std::move(attribute)),
      pos1_(ToSet(std::move(pos1_values))),
      pos2_(ToSet(std::move(pos2_values))) {
  if (!Disjoint(pos1_, pos2_)) {
    throw std::invalid_argument(
        "POS/POS requires disjoint POS1-set and POS2-set");
  }
}

bool PosPosPreference::LessValue(const Value& x, const Value& y) const {
  // Def. 6d: three disjuncts.
  bool x_other = !pos1_.count(x) && !pos2_.count(x);
  if (pos2_.count(x) && pos1_.count(y)) return true;
  if (x_other && pos2_.count(y)) return true;
  return x_other && pos1_.count(y) > 0;
}

std::optional<size_t> PosPosPreference::IntrinsicLevelOf(
    const Value& v) const {
  if (pos1_.count(v)) return 1;
  if (pos2_.count(v)) return 2;
  return 3;
}

std::string PosPosPreference::ToString() const {
  return "POS/POS(" + attribute() + ", " + SetToString(pos1_) + "; " +
         SetToString(pos2_) + ")";
}

bool PosPosPreference::ParamsEqual(const Preference& other) const {
  const auto& o = dynamic_cast<const PosPosPreference&>(other);
  return SameSet(pos1_, o.pos1_) && SameSet(pos2_, o.pos2_);
}

// ---------------------------------------------------------------------------
// EXPLICIT

ExplicitPreference::ExplicitPreference(std::string attribute,
                                       std::vector<ExplicitEdge> edges)
    : BasePreference(PreferenceKind::kExplicit, std::move(attribute)),
      edges_(std::move(edges)) {
  for (const auto& e : edges_) {
    range_.insert(e.worse);
    range_.insert(e.better);
  }
  // Transitive closure by repeated relaxation (graphs are small by design:
  // "handcrafted" per the paper).
  for (const auto& e : edges_) {
    if (e.worse == e.better) {
      throw std::invalid_argument("EXPLICIT graph has a self-loop on " +
                                  e.worse.ToString());
    }
    closure_.insert({e.worse, e.better});
  }
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::pair<Value, Value>> to_add;
    for (const auto& ab : closure_) {
      for (const auto& bc : closure_) {
        if (ab.second == bc.first) {
          auto ac = std::make_pair(ab.first, bc.second);
          if (!closure_.count(ac)) to_add.push_back(ac);
        }
      }
    }
    for (auto& p : to_add) {
      closure_.insert(std::move(p));
      changed = true;
    }
  }
  for (const auto& p : closure_) {
    if (p.first == p.second) {
      throw std::invalid_argument("EXPLICIT graph is cyclic through " +
                                  p.first.ToString());
    }
  }
  // Levels: longest chain above a value (repeated relaxation over the
  // closure; graphs are small by design), plus whether the graph order
  // equals the level order (a weak order).
  for (const Value& v : range_) level_[v] = 1;
  bool level_changed = true;
  size_t guard = 0;
  while (level_changed && guard++ <= range_.size() + 1) {
    level_changed = false;
    for (const auto& p : closure_) {
      if (level_[p.first] < level_[p.second] + 1) {
        level_[p.first] = level_[p.second] + 1;
        level_changed = true;
      }
    }
  }
  for (const auto& [v, lvl] : level_) deepest_ = std::max(deepest_, lvl);
  for (const Value& x : range_) {
    for (const Value& y : range_) {
      if (x == y) continue;
      if ((closure_.count({x, y}) > 0) != (level_.at(x) > level_.at(y))) {
        level_order_ = false;
        break;
      }
    }
    if (!level_order_) break;
  }
}

size_t ExplicitPreference::LevelOf(const Value& v) const {
  auto it = level_.find(v);
  return it == level_.end() ? deepest_ + 1 : it->second;
}

bool ExplicitPreference::LessValue(const Value& x, const Value& y) const {
  // x <P y iff x <E y, or x outside the graph and y inside (Def. 6e).
  if (closure_.count({x, y})) return true;
  return !range_.count(x) && range_.count(y) > 0;
}

std::string ExplicitPreference::ToString() const {
  std::string out = "EXPLICIT(" + attribute() + ", {";
  for (size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + edges_[i].worse.ToString() + " < " +
           edges_[i].better.ToString() + ")";
  }
  out += "})";
  return out;
}

bool ExplicitPreference::ParamsEqual(const Preference& other) const {
  const auto& o = dynamic_cast<const ExplicitPreference&>(other);
  if (!SameSet(range_, o.range_)) return false;
  if (closure_.size() != o.closure_.size()) return false;
  for (const auto& p : closure_) {
    if (!o.closure_.count(p)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// POS/NEG-GRAPHS (§3.4 super-constructor)

PosNegGraphsPreference::PosNegGraphsPreference(
    std::string attribute, std::vector<ExplicitEdge> pos_edges,
    std::vector<Value> pos_nodes, std::vector<ExplicitEdge> neg_edges,
    std::vector<Value> neg_nodes)
    : BasePreference(PreferenceKind::kPosNegGraphs, attribute),
      pos_graph_(std::make_shared<ExplicitPreference>(attribute,
                                                      std::move(pos_edges))),
      neg_graph_(std::make_shared<ExplicitPreference>(attribute,
                                                      std::move(neg_edges))) {
  pos_range_ = pos_graph_->graph_values();
  for (auto& v : pos_nodes) pos_range_.insert(std::move(v));
  neg_range_ = neg_graph_->graph_values();
  for (auto& v : neg_nodes) neg_range_.insert(std::move(v));
  if (!Disjoint(pos_range_, neg_range_)) {
    throw std::invalid_argument(
        "POS/NEG-GRAPHS requires disjoint POS-graph and NEG-graph values");
  }
}

bool PosNegGraphsPreference::LessValue(const Value& x, const Value& y) const {
  // Class 1 = POS-graph values, class 2 = other values, class 3 =
  // NEG-graph values; lexicographic by class, then the graph order within
  // class 1 resp. class 3 ((POS-graph (+) others) (+) NEG-graph).
  auto klass = [this](const Value& v) {
    if (pos_range_.count(v)) return 1;
    if (neg_range_.count(v)) return 3;
    return 2;
  };
  int kx = klass(x), ky = klass(y);
  if (kx != ky) return kx > ky;
  // Within a class only the edge closure orders values; isolated nodes
  // stay unranked against the graph (guard against EXPLICIT's
  // "outside < inside" rule leaking in).
  if (kx == 1) {
    return pos_graph_->graph_values().count(x) > 0 &&
           pos_graph_->LessValue(x, y);
  }
  if (kx == 3) {
    return neg_graph_->graph_values().count(x) > 0 &&
           neg_graph_->LessValue(x, y);
  }
  return false;
}

std::string PosNegGraphsPreference::ToString() const {
  std::string out = "POS/NEG-GRAPHS(" + attribute() + ", pos:";
  out += SetToString(pos_range_);
  out += "; neg:";
  out += SetToString(neg_range_);
  out += ")";
  return out;
}

bool PosNegGraphsPreference::ParamsEqual(const Preference& other) const {
  const auto& o = dynamic_cast<const PosNegGraphsPreference&>(other);
  return SameSet(pos_range_, o.pos_range_) &&
         SameSet(neg_range_, o.neg_range_) &&
         pos_graph_->StructurallyEquals(*o.pos_graph_) &&
         neg_graph_->StructurallyEquals(*o.neg_graph_);
}

PrefPtr PosNegGraphs(std::string attribute,
                     std::vector<ExplicitEdge> pos_edges,
                     std::vector<Value> pos_nodes,
                     std::vector<ExplicitEdge> neg_edges,
                     std::vector<Value> neg_nodes) {
  return std::make_shared<PosNegGraphsPreference>(
      std::move(attribute), std::move(pos_edges), std::move(pos_nodes),
      std::move(neg_edges), std::move(neg_nodes));
}

// ---------------------------------------------------------------------------
// LAYERED

LayeredPreference::LayeredPreference(std::string attribute,
                                     std::vector<Layer> layers)
    : BasePreference(PreferenceKind::kLayered, std::move(attribute)),
      layers_(std::move(layers)) {
  if (layers_.empty()) {
    throw std::invalid_argument("LAYERED requires at least one layer");
  }
  others_level_ = 0;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].is_others) {
      if (others_level_ != 0) {
        throw std::invalid_argument("LAYERED allows only one OTHERS layer");
      }
      if (!layers_[i].values.empty()) {
        throw std::invalid_argument("OTHERS layer must not list values");
      }
      others_level_ = i + 1;
      continue;
    }
    for (const Value& v : layers_[i].values) {
      if (!level_.emplace(v, i + 1).second) {
        throw std::invalid_argument("LAYERED layers must be disjoint; " +
                                    v.ToString() + " appears twice");
      }
    }
  }
  if (others_level_ == 0) others_level_ = layers_.size() + 1;
}

size_t LayeredPreference::LevelOf(const Value& v) const {
  auto it = level_.find(v);
  return it == level_.end() ? others_level_ : it->second;
}

bool LayeredPreference::LessValue(const Value& x, const Value& y) const {
  return LevelOf(x) > LevelOf(y);
}

std::string LayeredPreference::ToString() const {
  std::string out = "LAYERED(" + attribute() + ", [";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out += ", ";
    if (layers_[i].is_others) {
      out += "OTHERS";
    } else {
      out += SetToString(ToSet(layers_[i].values));
    }
  }
  out += "])";
  return out;
}

bool LayeredPreference::ParamsEqual(const Preference& other) const {
  const auto& o = dynamic_cast<const LayeredPreference&>(other);
  if (layers_.size() != o.layers_.size()) return false;
  if (others_level_ != o.others_level_) return false;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].is_others != o.layers_[i].is_others) return false;
    if (!SameSet(ToSet(layers_[i].values), ToSet(o.layers_[i].values))) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Factories

PrefPtr Pos(std::string attribute, std::vector<Value> pos_values) {
  return std::make_shared<PosPreference>(std::move(attribute),
                                         std::move(pos_values));
}

PrefPtr Neg(std::string attribute, std::vector<Value> neg_values) {
  return std::make_shared<NegPreference>(std::move(attribute),
                                         std::move(neg_values));
}

PrefPtr PosNeg(std::string attribute, std::vector<Value> pos_values,
               std::vector<Value> neg_values) {
  return std::make_shared<PosNegPreference>(
      std::move(attribute), std::move(pos_values), std::move(neg_values));
}

PrefPtr PosPos(std::string attribute, std::vector<Value> pos1_values,
               std::vector<Value> pos2_values) {
  return std::make_shared<PosPosPreference>(
      std::move(attribute), std::move(pos1_values), std::move(pos2_values));
}

PrefPtr Explicit(std::string attribute, std::vector<ExplicitEdge> edges) {
  return std::make_shared<ExplicitPreference>(std::move(attribute),
                                              std::move(edges));
}

PrefPtr Layered(std::string attribute,
                std::vector<LayeredPreference::Layer> layers) {
  return std::make_shared<LayeredPreference>(std::move(attribute),
                                             std::move(layers));
}

}  // namespace prefdb
