// Complex preference constructors (Kießling Defs. 3, 5, 8-12):
//   Pareto accumulation        P1 (x) P2        (Def. 8)
//   Prioritized accumulation   P1 & P2          (Def. 9)
//   Numerical accumulation     rank(F)(P1..Pn)  (Def. 10)
//   Intersection aggregation   P1 <>  P2        (Def. 11a)
//   Disjoint union aggregation P1 + P2          (Def. 11b)
//   Linear sum aggregation     P1 (+) P2        (Def. 12)
//   Dual, Subset, Anti-chain                    (Def. 3)
//
// Every constructor is closed under strict-partial-order semantics
// (Proposition 1); the test suite verifies the SPO axioms property-style.

#ifndef PREFDB_CORE_COMPLEX_PREFERENCES_H_
#define PREFDB_CORE_COMPLEX_PREFERENCES_H_

#include <unordered_set>

#include "core/preference.h"

namespace prefdb {

/// Pareto accumulation P1 (x) P2: equally important component preferences;
/// strict coordinate-wise order (Def. 8). Attribute sets may overlap
/// (conflicts are a feature, §2). Maximal values form the Pareto-optimal
/// set.
class ParetoPreference : public Preference {
 public:
  ParetoPreference(PrefPtr left, PrefPtr right);
  const PrefPtr& left() const { return left_; }
  const PrefPtr& right() const { return right_; }
  std::vector<PrefPtr> children() const override { return {left_, right_}; }
  LessFn Bind(const Schema& schema) const override;
  std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const override;
  std::string ToString() const override;

 private:
  PrefPtr left_;
  PrefPtr right_;
};

/// Prioritized accumulation P1 & P2: P1 dominates; P2 only breaks ties of
/// equal P1-attribute values (Def. 9). Strict lexicographic order.
class PrioritizedPreference : public Preference {
 public:
  PrioritizedPreference(PrefPtr more_important, PrefPtr less_important);
  const PrefPtr& left() const { return left_; }
  const PrefPtr& right() const { return right_; }
  std::vector<PrefPtr> children() const override { return {left_, right_}; }
  LessFn Bind(const Schema& schema) const override;
  std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const override;
  /// Prop. 3h: prioritization of chains over disjoint attributes is a chain.
  bool IsChain() const override;
  std::string ToString() const override;

 private:
  PrefPtr left_;
  PrefPtr right_;
};

/// Numerical accumulation rank(F)(P1, ..., Pn): combines the scores of
/// SCORE-compatible inputs through F (Def. 10). By constructor
/// substitutability (§3.4) any input exposing sort keys of length 1 —
/// i.e. every numerical base preference — is accepted.
class RankPreference : public Preference {
 public:
  using CombineFn = std::function<double(const std::vector<double>&)>;

  /// `function_name` identifies F for rendering/structural equality.
  RankPreference(CombineFn combine, std::string function_name,
                 std::vector<PrefPtr> inputs);
  const std::vector<PrefPtr>& inputs() const { return inputs_; }
  const std::string& function_name() const { return name_; }
  std::vector<PrefPtr> children() const override { return inputs_; }
  LessFn Bind(const Schema& schema) const override;
  std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const override;
  /// The combined utility F(f1(x1), ..., fn(xn)) of a tuple.
  ScoreFn BindUtility(const Schema& schema) const;
  std::string ToString() const override;

 protected:
  bool ParamsEqual(const Preference& other) const override;

 private:
  CombineFn combine_;
  std::string name_;
  std::vector<PrefPtr> inputs_;
};

/// Intersection aggregation P1 <> P2: both must agree (Def. 11a). Requires
/// identical attribute sets (std::invalid_argument otherwise).
class IntersectionPreference : public Preference {
 public:
  IntersectionPreference(PrefPtr left, PrefPtr right);
  const PrefPtr& left() const { return left_; }
  const PrefPtr& right() const { return right_; }
  std::vector<PrefPtr> children() const override { return {left_, right_}; }
  LessFn Bind(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  PrefPtr left_;
  PrefPtr right_;
};

/// Disjoint union aggregation P1 + P2 (Def. 11b): piecewise assembly of a
/// preference from order-disjoint pieces. Def. 11b states it for one shared
/// attribute set; when the attribute sets differ, each side is order-
/// embedded into the union (exactly the P1* embedding the paper's proof of
/// Prop. 4b uses).
/// Precondition (Def. 4): range(<P1) and range(<P2) are disjoint — this is
/// a *semantic* property the caller must guarantee; the library validates
/// it on finite relations via ValidateDisjointOn().
class DisjointUnionPreference : public Preference {
 public:
  DisjointUnionPreference(PrefPtr left, PrefPtr right);
  const PrefPtr& left() const { return left_; }
  const PrefPtr& right() const { return right_; }
  std::vector<PrefPtr> children() const override { return {left_, right_}; }
  LessFn Bind(const Schema& schema) const override;
  /// Checks the disjoint-ranges precondition over the value combinations of
  /// a finite tuple sample; returns false if some pair is ordered by both.
  bool ValidateDisjointOn(const Schema& schema,
                          const std::vector<Tuple>& sample) const;
  std::string ToString() const override;

 private:
  PrefPtr left_;
  PrefPtr right_;
};

/// Linear sum aggregation P1 (+) P2 (Def. 12): concatenates two orders over
/// a fused domain dom(A) = dom(A1) u dom(A2); everything in dom(A1) is
/// better than everything in dom(A2). The children must be single-attribute
/// preferences; membership of a value in dom(A1) is decided by the `in_left`
/// predicate (dom disjointness is the caller's contract).
class LinearSumPreference : public BasePreference {
 public:
  using MembershipFn = std::function<bool(const Value&)>;
  LinearSumPreference(std::string fused_attribute, PrefPtr left, PrefPtr right,
                      MembershipFn in_left, MembershipFn in_right);
  const PrefPtr& left() const { return left_; }
  const PrefPtr& right() const { return right_; }
  std::vector<PrefPtr> children() const override { return {left_, right_}; }
  bool LessValue(const Value& x, const Value& y) const override;
  std::string ToString() const override;

 private:
  PrefPtr left_;
  PrefPtr right_;
  MembershipFn in_left_;
  MembershipFn in_right_;
  std::function<bool(const Value&, const Value&)> left_less_;
  std::function<bool(const Value&, const Value&)> right_less_;
};

/// Dual preference P^d: reverses the order (Def. 3c).
class DualPreference : public Preference {
 public:
  explicit DualPreference(PrefPtr inner);
  const PrefPtr& inner() const { return inner_; }
  std::vector<PrefPtr> children() const override { return {inner_}; }
  LessFn Bind(const Schema& schema) const override;
  std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const override;
  bool IsChain() const override { return inner_->IsChain(); }
  std::string ToString() const override;

 private:
  PrefPtr inner_;
};

/// Subset preference P|S (Def. 3d): the order of P restricted to a finite
/// value-combination set S given as tuples over P's attributes. Pairs with
/// either side outside S are unranked. Database preferences (Def. 14) are
/// the special case S = R[A]; the evaluator materializes those implicitly,
/// this class exists for explicit algebraic use.
class SubsetPreference : public Preference {
 public:
  SubsetPreference(PrefPtr inner, std::vector<Tuple> subset);
  const PrefPtr& inner() const { return inner_; }
  std::vector<PrefPtr> children() const override { return {inner_}; }
  LessFn Bind(const Schema& schema) const override;
  std::string ToString() const override;

 private:
  PrefPtr inner_;
  std::vector<Tuple> subset_;
  std::unordered_set<Tuple, TupleHash> member_;
};

/// Anti-chain preference S<->= (A, {}) (Def. 3b): no value is better than
/// any other. The neutral element for '&' on the right (Prop. 3j) and the
/// grouping device A<-> & P of Def. 16.
class AntiChainPreference : public Preference {
 public:
  explicit AntiChainPreference(std::vector<std::string> attributes);
  LessFn Bind(const Schema& schema) const override;
  std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const override;
  std::string ToString() const override;
};

// ---------------------------------------------------------------------------
// Factory functions.

PrefPtr Pareto(PrefPtr left, PrefPtr right);
/// n-ary Pareto, left-folded: ((P1 (x) P2) (x) P3) ... (associative by
/// Prop. 2b, so the fold shape does not matter semantically).
PrefPtr Pareto(std::vector<PrefPtr> prefs);
PrefPtr Prioritized(PrefPtr more_important, PrefPtr less_important);
/// n-ary prioritization, left-folded (associative by Prop. 2c).
PrefPtr Prioritized(std::vector<PrefPtr> prefs);
PrefPtr Rank(RankPreference::CombineFn combine, std::string function_name,
             std::vector<PrefPtr> inputs);
/// rank(F) with F = w1*s1 + ... + wn*sn.
PrefPtr RankWeightedSum(std::vector<double> weights,
                        std::vector<PrefPtr> inputs);
PrefPtr Intersection(PrefPtr left, PrefPtr right);
PrefPtr DisjointUnion(PrefPtr left, PrefPtr right);
PrefPtr LinearSum(std::string fused_attribute, PrefPtr left, PrefPtr right,
                  LinearSumPreference::MembershipFn in_left,
                  LinearSumPreference::MembershipFn in_right);
/// Linear sum with finite membership sets.
PrefPtr LinearSum(std::string fused_attribute, PrefPtr left, PrefPtr right,
                  std::vector<Value> left_domain,
                  std::vector<Value> right_domain);
PrefPtr Dual(PrefPtr inner);
PrefPtr Subset(PrefPtr inner, std::vector<Tuple> subset);
PrefPtr AntiChain(std::vector<std::string> attributes);
PrefPtr AntiChain(std::string attribute);

}  // namespace prefdb

#endif  // PREFDB_CORE_COMPLEX_PREFERENCES_H_
