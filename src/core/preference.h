// The preference model of Kießling, "Foundations of Preferences in Database
// Systems" (VLDB 2002): preferences P = (A, <P) as strict partial orders
// over attribute domains (Def. 1), represented as immutable preference
// terms (Def. 5) that can be bound against a relation schema for
// evaluation.

#ifndef PREFDB_CORE_PREFERENCE_H_
#define PREFDB_CORE_PREFERENCE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"

namespace prefdb {

/// Constructor tag of a preference-term node (Def. 5 plus the layered
/// super-constructor §3.4 hints at, used by Preference SQL's ELSE).
enum class PreferenceKind {
  // Non-numerical base preferences (Def. 6).
  kPos,
  kNeg,
  kPosNeg,
  kPosPos,
  kExplicit,
  kPosNegGraphs,
  kLayered,
  // Numerical base preferences (Def. 7).
  kAround,
  kBetween,
  kLowest,
  kHighest,
  kScore,
  // Accumulating constructors (Defs. 8-10).
  kPareto,
  kPrioritized,
  kRankF,
  // Aggregating constructors (Defs. 11-12).
  kIntersection,
  kDisjointUnion,
  kLinearSum,
  // Structural constructors (Def. 3).
  kDual,
  kSubset,
  kAntiChain,
};

/// Human-readable constructor name ("POS", "PARETO", ...).
const char* PreferenceKindName(PreferenceKind kind);

class Preference;
/// Preference terms are immutable DAGs of shared nodes.
using PrefPtr = std::shared_ptr<const Preference>;

/// A strict-partial-order test bound to a concrete schema:
/// less(x, y) computes "x <P y", i.e. "y is better than x".
using LessFn = std::function<bool(const Tuple&, const Tuple&)>;
/// Equality of two tuples on a preference's attribute set ("x1 = y1" in
/// Defs. 8/9).
using EqFn = std::function<bool(const Tuple&, const Tuple&)>;
/// A numeric utility of a tuple (used for rank(F), SFS presorting and the
/// ranked query model of §6.2).
using ScoreFn = std::function<double(const Tuple&)>;

/// Abstract preference term node. A node knows its constructor kind, its
/// attribute set A, its children, and how to bind itself against a Schema
/// producing a LessFn. All subclasses guarantee that the bound relation is
/// a strict partial order (irreflexive + transitive; Proposition 1).
///
/// Nodes must be heap-allocated through the factory functions (they derive
/// from enable_shared_from_this so bound closures keep their node alive).
class Preference : public std::enable_shared_from_this<Preference> {
 public:
  virtual ~Preference() = default;

  PreferenceKind kind() const { return kind_; }

  /// The attribute name set A of P = (A, <P). Order is insertion order of
  /// construction; semantically a set (paper: "the order of components
  /// within the Cartesian product is considered irrelevant").
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Child terms (empty for base preferences).
  virtual std::vector<PrefPtr> children() const { return {}; }

  /// Binds the strict partial order against a schema. All attributes() must
  /// resolve in the schema; otherwise std::out_of_range is thrown.
  virtual LessFn Bind(const Schema& schema) const = 0;

  /// Binds equality on this preference's attribute set.
  EqFn BindEquality(const Schema& schema) const;

  /// Topologically compatible sort keys, when derivable: if a non-empty
  /// vector of ScoreFns is returned, then x <P y implies keys(x) is
  /// lexicographically smaller than keys(y), and equal attribute values
  /// imply equal keys. Used by the sort-filter (SFS-style) BMO algorithm
  /// and by rank(F). Returns nullopt when no such keys are derivable.
  virtual std::optional<std::vector<ScoreFn>> BindSortKeys(
      const Schema& schema) const {
    (void)schema;
    return std::nullopt;
  }

  /// Conservative static chain test (Def. 3a): true only if the term is
  /// guaranteed to be a total order on every domain. (LOWEST/HIGHEST are
  /// chains; prioritized accumulation of chains over disjoint attributes is
  /// a chain, Prop. 3h.)
  virtual bool IsChain() const { return false; }

  /// Term rendering, e.g. "POS(color, {'yellow'})" or "(P1 (x) P2)".
  virtual std::string ToString() const = 0;

  /// Structural (syntactic) term equality — not semantic equivalence
  /// (Def. 13); see algebra/equivalence.h for the latter.
  bool StructurallyEquals(const Preference& other) const;

 protected:
  Preference(PreferenceKind kind, std::vector<std::string> attributes);

  /// Node-local structural comparison of parameters, assuming kinds,
  /// attributes and children already matched.
  virtual bool ParamsEqual(const Preference& other) const {
    (void)other;
    return true;
  }

 private:
  PreferenceKind kind_;
  std::vector<std::string> attributes_;
};

/// Base class for single-attribute base preferences: the order is defined
/// value-wise on dom(A).
class BasePreference : public Preference {
 public:
  /// The single attribute name this base preference constrains.
  const std::string& attribute() const { return attributes()[0]; }

  /// Value-wise strict order: x <P y on dom(A).
  virtual bool LessValue(const Value& x, const Value& y) const = 0;

  /// Intrinsic 1-based level of a value when the order is a layered weak
  /// order with LessValue(x, y) <=> level(x) > level(y) (lower level =
  /// better; Def. 6 semantics, the LEVEL quality function of §6.1).
  /// Implementations must either level *every* value or return nullopt
  /// unconditionally — callers probe with an arbitrary value to decide
  /// whether level semantics exist. Subclasses introduced outside core/
  /// (e.g. Preference SQL's condition-layered ELSE chains) override this
  /// instead of being downcast by kind tag.
  virtual std::optional<size_t> IntrinsicLevelOf(const Value& v) const {
    (void)v;
    return std::nullopt;
  }

  LessFn Bind(const Schema& schema) const override;

 protected:
  BasePreference(PreferenceKind kind, std::string attribute);
};

/// Binds a single-attribute preference (not necessarily a BasePreference —
/// e.g. a dual of one, or a linear sum) to a value-wise order. Throws
/// std::invalid_argument if the preference has more than one attribute.
std::function<bool(const Value&, const Value&)> BindValueLess(
    const PrefPtr& pref);

/// Computes the union of attribute sets preserving first-occurrence order.
std::vector<std::string> AttributeUnion(
    const std::vector<std::string>& a, const std::vector<std::string>& b);

/// True iff the two attribute name sets are equal as sets.
bool SameAttributeSet(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// True iff the attribute sets are disjoint.
bool DisjointAttributeSets(const std::vector<std::string>& a,
                           const std::vector<std::string>& b);

}  // namespace prefdb

#endif  // PREFDB_CORE_PREFERENCE_H_
