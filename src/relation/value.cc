#include "relation/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace prefdb {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    return *numeric() == *other.numeric();
  }
  return rep_ == other.rep_;
}

bool Value::operator<(const Value& other) const {
  // Rank by broad class first: NULL < numeric < string.
  auto klass = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_numeric()) return 1;
    return 2;
  };
  int ka = klass(*this), kb = klass(other);
  if (ka != kb) return ka < kb;
  if (ka == 0) return false;  // NULL == NULL
  if (ka == 1) {
    // Consistent with operator==: numerically equal int/double are
    // equivalent, never ordered.
    return *numeric() < *other.numeric();
  }
  return as_string() < other.as_string();
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      char buf[64];
      double d = as_double();
      // Range-check before the int64 cast: casting a double outside the
      // int64 range (1e300, +/-inf) is undefined behavior, so the guard
      // must short-circuit first. NaN fails the comparison and falls
      // through to %g too.
      if (std::abs(d) < 1e15 && d == static_cast<int64_t>(d)) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
      } else {
        std::snprintf(buf, sizeof(buf), "%g", d);
      }
      return buf;
    }
    case ValueType::kString:
      return "'" + as_string() + "'";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
    case ValueType::kDouble: {
      double d = *numeric();
      if (d == 0.0) d = 0.0;  // normalize -0.0
      // Integral doubles hash like the integer so == implies equal hashes.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d)) ^ 0x517cc1b7;
      }
      return std::hash<double>{}(d) ^ 0x517cc1b7;
    }
    case ValueType::kString:
      return std::hash<std::string>{}(as_string()) ^ 0x2545f491;
  }
  return 0;
}

std::optional<Value> ParseValue(const std::string& text, ValueType type) {
  if (text.empty()) return Value();
  switch (type) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') return std::nullopt;
      // strtoll signals out-of-range input by clamping to LLONG_MIN/MAX
      // and setting ERANGE; silently accepting the clamp would corrupt
      // ingested data (e.g. "99999999999999999999" -> INT64_MAX).
      if (errno == ERANGE) return std::nullopt;
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') return std::nullopt;
      // Reject overflow (ERANGE with +/-HUGE_VAL, e.g. "1e999"); keep
      // ERANGE underflow (denormals like "1e-320"), which strtod reports
      // with a representable result.
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        return std::nullopt;
      }
      return Value(v);
    }
    case ValueType::kString:
      return Value(text);
  }
  return std::nullopt;
}

}  // namespace prefdb
