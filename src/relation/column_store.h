// Column-major (SoA) relation storage. One typed, contiguous vector per
// column — widened doubles for numerics, exact int64 shadows for
// reconstruction fidelity, dictionary codes for strings, a per-row type
// tag that doubles as the validity (NULL) map — so score-table
// compilation and columnar scans read flat arrays instead of walking
// heap-scattered row Values. Copy-on-write is per column: copying a
// ColumnStore shares the column buffers; the first mutation clones only
// the columns it touches (a flat memcpy, not a per-Value deep copy).

#ifndef PREFDB_RELATION_COLUMN_STORE_H_
#define PREFDB_RELATION_COLUMN_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/tuple.h"
#include "relation/value.h"

namespace prefdb {

/// Append-only string dictionary shared by the string rows of one column.
/// Codes are stable: interning never reorders, so a clone taken at any
/// point keeps every previously issued code valid.
class StringDict {
 public:
  /// Returns the code for `s`, interning it if new.
  uint32_t Intern(const std::string& s);
  std::optional<uint32_t> Find(const std::string& s) const;
  const std::string& At(uint32_t code) const { return strings_[code]; }
  size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, uint32_t> index_;
};

/// One column of a relation. `tags` always has one entry per row (the
/// runtime type, which is also the validity map: kNull marks NULL).
/// `nums` always has one entry per row: the widened numeric value for
/// kInt/kDouble rows (0.0 elsewhere), so numeric scans read one flat
/// double array. `ints` and `codes` are allocated lazily, only once the
/// column actually holds an int (exact int64 reconstruction — doubles
/// lose precision past 2^53) or a string.
struct Column {
  std::vector<uint8_t> tags;
  std::vector<double> nums;
  std::vector<int64_t> ints;      // empty until the first kInt row
  std::vector<uint32_t> codes;    // empty until the first kString row
  std::shared_ptr<StringDict> dict;

  // Running summary counters: O(1) compile-eligibility checks.
  uint32_t null_count = 0;
  uint32_t int_count = 0;
  uint32_t string_count = 0;
  uint32_t nan_count = 0;

  size_t size() const { return tags.size(); }
  ValueType TagAt(size_t i) const { return static_cast<ValueType>(tags[i]); }
  /// True when every row is kInt or kDouble: `nums` alone is the column.
  bool AllNumeric() const { return null_count + string_count == 0; }
  /// The zero-copy compile contract: all-numeric and NaN-free, so the
  /// widened doubles in `nums` are exactly the Value-semantics column.
  bool NumericNanFree() const { return AllNumeric() && nan_count == 0; }

  void Append(const Value& v);
  Value At(size_t i) const;
};

/// A column-major table: shared column buffers plus an optional row
/// permutation (`perm`). A non-null perm makes this store an index view
/// over the same buffers — SelectRows/Filter/Sorted produce views, so
/// downstream consumers (engine exec cache, parallel partitions, IVM
/// passes) never copy rows. Views compose: a view of a view folds the
/// permutations into one flat vector, keeping lookups single-hop.
class ColumnStore {
 public:
  ColumnStore() = default;
  explicit ColumnStore(size_t num_columns);

  size_t rows() const { return nrows_; }
  size_t num_columns() const { return cols_.size(); }

  /// The underlying (pre-permutation) row index of logical row `i`.
  size_t PhysicalRow(size_t i) const { return perm_ ? (*perm_)[i] : i; }
  bool IsView() const { return perm_ != nullptr; }

  /// Direct column access for columnar scans. With a view, callers must
  /// index through PhysicalRow; flat stores index directly.
  const Column& column(size_t c) const { return *cols_[c]; }

  Value ValueAt(size_t row, size_t col) const {
    return cols_[col]->At(PhysicalRow(row));
  }
  Tuple MaterializeRow(size_t row) const;

  /// Appends one row (arity must equal num_columns). A view flattens
  /// first; shared columns are cloned before the append (per-column COW).
  void AppendRow(const Tuple& t);

  /// Column-sharing projection: the returned store references the chosen
  /// column buffers (and this store's permutation) without copying.
  ColumnStore ProjectColumns(const std::vector<size_t>& cols) const;

  /// Index view selecting `rows` (logical indices of `base`), sharing the
  /// column buffers. When the selection drops at least half the rows the
  /// result is materialized instead, so a shrunken store does not pin the
  /// full base buffers (the engine Delete path relies on this).
  static ColumnStore View(const ColumnStore& base, std::vector<uint32_t> rows);

  /// Materializes a view into flat columns; no-op when already flat.
  void Flatten();

 private:
  std::shared_ptr<Column>& MutableColumn(size_t c);

  size_t nrows_ = 0;
  std::vector<std::shared_ptr<Column>> cols_;
  std::shared_ptr<const std::vector<uint32_t>> perm_;
};

/// Dense per-row equality codes over `cols` of `r`'s store, consistent
/// with Value equality (numeric widening, NULL == NULL, NaN != NaN):
/// rows i, j get the same code iff their projections onto `cols` are
/// equal. `pool` restricts and reorders the scanned rows (logical
/// indices); null means all rows. `group_rows[g]` is a representative
/// pool position for code g. This is the columnar core behind Distinct,
/// DistinctProjections, GroupIndicesBy and the projection index.
struct GroupCoding {
  std::vector<uint32_t> codes;       // one per scanned pool position
  std::vector<uint32_t> group_rows;  // representative pool position per code
  size_t num_groups = 0;
};

class Relation;
GroupCoding ComputeGroupCoding(const Relation& r,
                               const std::vector<size_t>& cols,
                               const std::vector<size_t>* pool = nullptr);

/// Cheap sampled distinctness probe over the projection onto `cols`:
/// hashes ~512 strided rows and reports whether at least half were
/// distinct. Gates the zero-copy compile path (which skips duplicate
/// elimination — sound either way, but heavy duplication makes the
/// deduplicating gather path cheaper). Hash collisions only under-count,
/// i.e. mis-report toward the safe (gather) side.
bool LikelyMostlyDistinct(const Relation& r, const std::vector<size_t>& cols,
                          const std::vector<size_t>* pool = nullptr);

}  // namespace prefdb

#endif  // PREFDB_RELATION_COLUMN_STORE_H_
