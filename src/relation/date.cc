#include "relation/date.h"

#include <cstdio>

namespace prefdb {

namespace {

// Days-from-civil (Howard Hinnant's public-domain algorithm).
int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int64_t* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1, 12]
  *y = yy + (*m <= 2);
}

bool ValidDate(int64_t y, unsigned m, unsigned d) {
  if (m < 1 || m > 12 || d < 1) return false;
  static const unsigned kDays[] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};
  unsigned max_d = kDays[m - 1];
  bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  if (m == 2 && leap) max_d = 29;
  return d <= max_d;
}

}  // namespace

std::optional<int64_t> ParseDateOrdinal(const std::string& text) {
  long long y = 0;
  unsigned m = 0, d = 0;
  char sep1 = 0, sep2 = 0;
  char tail = 0;
  int fields = std::sscanf(text.c_str(), "%lld%c%u%c%u%c", &y, &sep1, &m,
                           &sep2, &d, &tail);
  if (fields != 5) return std::nullopt;
  if ((sep1 != '/' && sep1 != '-') || sep1 != sep2) return std::nullopt;
  if (!ValidDate(y, m, d)) return std::nullopt;
  return DaysFromCivil(y, m, d);
}

std::string FormatDateOrdinal(int64_t days) {
  int64_t y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld/%02u/%02u", static_cast<long long>(y),
                m, d);
  return buf;
}

}  // namespace prefdb
