// Tuples: fixed-arity value vectors aligned with a Schema.

#ifndef PREFDB_RELATION_TUPLE_H_
#define PREFDB_RELATION_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "relation/value.h"

namespace prefdb {

/// A tuple is a positional vector of Values; the meaning of positions is
/// given by the Relation's Schema. Tuples are plain data.
class Tuple {
 public:
  Tuple() = default;
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  const Value& at(size_t i) const { return values_[i]; }
  const Value& operator[](size_t i) const { return values_[i]; }
  Value& operator[](size_t i) { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }

  /// Projection t[A]: picks the given column indices, in order.
  Tuple Project(const std::vector<size_t>& indices) const {
    Tuple out;
    out.values_.reserve(indices.size());
    for (size_t idx : indices) out.values_.push_back(values_[idx]);
    return out;
  }

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

  /// Lexicographic order over the Value total order (for deterministic
  /// sorting only; unrelated to preference orders).
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  /// "(v1, v2, ...)" rendering.
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace prefdb

#endif  // PREFDB_RELATION_TUPLE_H_
