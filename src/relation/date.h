// Date <-> ordinal conversion: the paper notes (Def. 7a) that AROUND and
// friends apply "to other ordered SQL types like Date". prefdb stores
// dates as integer day ordinals (days since 1970-01-01); these helpers
// convert the 'YYYY/MM/DD' literals Preference SQL queries use.

#ifndef PREFDB_RELATION_DATE_H_
#define PREFDB_RELATION_DATE_H_

#include <cstdint>
#include <optional>
#include <string>

namespace prefdb {

/// Parses 'YYYY/MM/DD' or 'YYYY-MM-DD' into days since 1970-01-01
/// (proleptic Gregorian). Returns nullopt on malformed text or an invalid
/// calendar date.
std::optional<int64_t> ParseDateOrdinal(const std::string& text);

/// Renders a day ordinal back as 'YYYY/MM/DD'.
std::string FormatDateOrdinal(int64_t days);

}  // namespace prefdb

#endif  // PREFDB_RELATION_DATE_H_
