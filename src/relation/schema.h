// Relation schemas: named, typed attribute lists (the "A = {A1:t1, ...}"
// of Kießling Def. 1 / §5.1).

#ifndef PREFDB_RELATION_SCHEMA_H_
#define PREFDB_RELATION_SCHEMA_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "relation/value.h"

namespace prefdb {

/// A single attribute: name plus domain type.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of uniquely named attributes. Attribute lookup is by
/// case-sensitive name.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Attribute> attrs)
      : attributes_(attrs) {}
  explicit Schema(std::vector<Attribute> attrs)
      : attributes_(std::move(attrs)) {}

  const std::vector<Attribute>& attributes() const { return attributes_; }
  size_t size() const { return attributes_.size(); }
  bool empty() const { return attributes_.empty(); }
  const Attribute& at(size_t i) const { return attributes_[i]; }

  /// Index of the attribute with the given name, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// True iff an attribute with this name exists.
  bool Has(const std::string& name) const { return IndexOf(name).has_value(); }

  /// Appends an attribute; returns its index. Duplicate names are rejected
  /// (returns existing index without modification).
  size_t Add(Attribute attr);

  /// Sub-schema by attribute names (projection schema). Unknown names are
  /// skipped.
  Schema Project(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const {
    return attributes_ == other.attributes_;
  }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  /// "(name:TYPE, ...)" rendering for messages and EXPLAIN output.
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

}  // namespace prefdb

#endif  // PREFDB_RELATION_SCHEMA_H_
