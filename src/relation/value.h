// prefdb — reproduction of W. Kießling, "Foundations of Preferences in
// Database Systems" (VLDB 2002).
//
// Dynamically typed value: the element of an attribute domain dom(A).

#ifndef PREFDB_RELATION_VALUE_H_
#define PREFDB_RELATION_VALUE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>

namespace prefdb {

/// Runtime type tag of a Value.
enum class ValueType {
  kNull,
  kInt,
  kDouble,
  kString,
};

/// Returns a human-readable name ("NULL", "INT", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed database value. Values are the elements of the
/// attribute domains dom(A) over which preferences (strict partial orders)
/// are declared. A Value is small, copyable and totally ordered (the total
/// order is only used for deterministic sorting/hashing; preference
/// "better-than" orders are independent of it).
class Value {
 public:
  /// Constructs the NULL value.
  Value() : rep_(std::monostate{}) {}
  Value(int64_t v) : rep_(v) {}          // NOLINT(google-explicit-constructor): implicit by design
  Value(int v) : rep_(int64_t{v}) {}     // NOLINT(google-explicit-constructor): implicit by design
  Value(double v) : rep_(v) {}           // NOLINT(google-explicit-constructor): implicit by design
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(google-explicit-constructor): implicit by design
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(google-explicit-constructor): implicit by design

  ValueType type() const {
    switch (rep_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return rep_.index() == 0; }
  bool is_int() const { return rep_.index() == 1; }
  bool is_double() const { return rep_.index() == 2; }
  bool is_string() const { return rep_.index() == 3; }
  bool is_numeric() const { return is_int() || is_double(); }

  /// Underlying accessors; behaviour is undefined if the type mismatches.
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric view: ints widen to double; non-numerics yield nullopt.
  /// Numerical base preferences (AROUND, BETWEEN, LOWEST, HIGHEST, SCORE)
  /// operate on this view.
  std::optional<double> numeric() const {
    if (is_int()) return static_cast<double>(as_int());
    if (is_double()) return as_double();
    return std::nullopt;
  }

  /// Equality is the "x1 = y1" of Defs. 8/9: same type (modulo int/double
  /// numeric widening) and same content. NULL equals NULL.
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order for sorting and map keys: NULL < numerics < strings;
  /// numerics compare by numeric value, ints before doubles on ties.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  /// SQL-literal-ish rendering: NULL, 42, 3.5, 'text'.
  std::string ToString() const;

  /// Stable hash consistent with operator== (numeric widening included).
  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> rep_;
};

/// Hash functor for unordered containers keyed by Value.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Parses a string into the given type ("" parses to NULL). Returns nullopt
/// on malformed numeric input.
std::optional<Value> ParseValue(const std::string& text, ValueType type);

}  // namespace prefdb

#endif  // PREFDB_RELATION_VALUE_H_
