#include "relation/column_store.h"

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "relation/relation.h"

namespace prefdb {

uint32_t StringDict::Intern(const std::string& s) {
  auto it = index_.find(s);
  if (it != index_.end()) return it->second;
  uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.push_back(s);
  index_.emplace(s, code);
  return code;
}

std::optional<uint32_t> StringDict::Find(const std::string& s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void Column::Append(const Value& v) {
  const size_t row = tags.size();
  tags.push_back(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      nums.push_back(0.0);
      ++null_count;
      break;
    case ValueType::kInt:
      nums.push_back(static_cast<double>(v.as_int()));
      if (ints.empty() && row > 0) ints.resize(row, 0);
      ++int_count;
      break;
    case ValueType::kDouble:
      nums.push_back(v.as_double());
      if (std::isnan(v.as_double())) ++nan_count;
      break;
    case ValueType::kString: {
      nums.push_back(0.0);
      if (codes.empty() && row > 0) codes.resize(row, 0);
      if (dict == nullptr) {
        dict = std::make_shared<StringDict>();
      } else if (dict.use_count() > 1 && !dict->Find(v.as_string())) {
        // The dictionary is shared with a column snapshot some reader may
        // be walking; interning a new entry would mutate it under them.
        // Clone before the first novel string (codes are append-only, so
        // the clone keeps every issued code valid).
        dict = std::make_shared<StringDict>(*dict);
      }
      ++string_count;
      break;
    }
  }
  if (!ints.empty() || int_count == 1) {
    ints.push_back(v.is_int() ? v.as_int() : 0);
  }
  if (!codes.empty() || (v.is_string() && string_count == 1)) {
    codes.push_back(v.is_string() ? dict->Intern(v.as_string()) : 0);
  }
}

Value Column::At(size_t i) const {
  switch (TagAt(i)) {
    case ValueType::kNull: return Value();
    case ValueType::kInt: return Value(ints[i]);
    case ValueType::kDouble: return Value(nums[i]);
    case ValueType::kString: return Value(dict->At(codes[i]));
  }
  return Value();
}

ColumnStore::ColumnStore(size_t num_columns) {
  cols_.reserve(num_columns);
  for (size_t c = 0; c < num_columns; ++c) {
    cols_.push_back(std::make_shared<Column>());
  }
}

Tuple ColumnStore::MaterializeRow(size_t row) const {
  const size_t phys = PhysicalRow(row);
  std::vector<Value> values;
  values.reserve(cols_.size());
  for (const auto& col : cols_) values.push_back(col->At(phys));
  return Tuple(std::move(values));
}

std::shared_ptr<Column>& ColumnStore::MutableColumn(size_t c) {
  if (cols_[c].use_count() != 1) {
    cols_[c] = std::make_shared<Column>(*cols_[c]);
  }
  return cols_[c];
}

void ColumnStore::AppendRow(const Tuple& t) {
  if (perm_ != nullptr) Flatten();
  for (size_t c = 0; c < cols_.size(); ++c) {
    MutableColumn(c)->Append(t[c]);
  }
  ++nrows_;
}

ColumnStore ColumnStore::ProjectColumns(const std::vector<size_t>& cols) const {
  ColumnStore out;
  out.nrows_ = nrows_;
  out.perm_ = perm_;
  out.cols_.reserve(cols.size());
  for (size_t c : cols) out.cols_.push_back(cols_[c]);
  return out;
}

namespace {

/// Columnar gather: the flat-buffer analogue of copying selected rows.
std::shared_ptr<Column> GatherColumn(const Column& src, const uint32_t* rows,
                                     size_t n) {
  auto out = std::make_shared<Column>();
  out->dict = src.dict;  // codes stay valid; the dict is append-only
  out->tags.reserve(n);
  out->nums.reserve(n);
  if (!src.ints.empty()) out->ints.reserve(n);
  if (!src.codes.empty()) out->codes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t r = rows[i];
    const uint8_t tag = src.tags[r];
    out->tags.push_back(tag);
    out->nums.push_back(src.nums[r]);
    if (!src.ints.empty()) out->ints.push_back(src.ints[r]);
    if (!src.codes.empty()) out->codes.push_back(src.codes[r]);
    switch (static_cast<ValueType>(tag)) {
      case ValueType::kNull: ++out->null_count; break;
      case ValueType::kInt: ++out->int_count; break;
      case ValueType::kDouble:
        if (std::isnan(src.nums[r])) ++out->nan_count;
        break;
      case ValueType::kString: ++out->string_count; break;
    }
  }
  return out;
}

}  // namespace

ColumnStore ColumnStore::View(const ColumnStore& base,
                              std::vector<uint32_t> rows) {
  // Compose with the base's own permutation so views stay single-hop.
  if (base.perm_ != nullptr) {
    for (uint32_t& r : rows) r = (*base.perm_)[r];
  }
  ColumnStore out;
  out.nrows_ = rows.size();
  if (rows.size() * 2 >= base.nrows_ || base.cols_.empty()) {
    out.cols_ = base.cols_;
    out.perm_ =
        std::make_shared<const std::vector<uint32_t>>(std::move(rows));
  } else {
    // Selecting under half the rows: materialize, so the shrunken store
    // releases the base buffers instead of pinning them.
    out.cols_.reserve(base.cols_.size());
    for (const auto& col : base.cols_) {
      out.cols_.push_back(GatherColumn(*col, rows.data(), rows.size()));
    }
  }
  return out;
}

void ColumnStore::Flatten() {
  if (perm_ == nullptr) return;
  std::shared_ptr<const std::vector<uint32_t>> perm = std::move(perm_);
  perm_ = nullptr;
  for (auto& col : cols_) {
    col = GatherColumn(*col, perm->data(), perm->size());
  }
}

namespace {

/// Exact (collision-free) map key for one cell joined with the running
/// group code: class separates NULL / numeric / string so their bit
/// domains never mix; numeric bits are the widened double (normalized
/// -0.0) — exactly Value equality, which widens every numeric compare.
struct CellKey {
  uint32_t acc;
  uint8_t cls;
  uint64_t bits;
  bool operator==(const CellKey& o) const {
    return acc == o.acc && cls == o.cls && bits == o.bits;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = k.bits * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<uint64_t>(k.acc) << 8) | k.cls;
    h *= 0xc2b2ae3d27d4eb4fULL;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

}  // namespace

GroupCoding ComputeGroupCoding(const Relation& r,
                               const std::vector<size_t>& cols,
                               const std::vector<size_t>* pool) {
  const ColumnStore& store = r.store();
  const size_t n = pool ? pool->size() : r.size();
  GroupCoding out;
  out.codes.assign(n, 0);
  if (n == 0) return out;
  if (cols.empty()) {
    // Zero grouping columns: every row projects to the empty tuple.
    out.num_groups = 1;
    out.group_rows.push_back(0);
    return out;
  }
  std::unordered_map<CellKey, uint32_t, CellKeyHash> ids;
  ids.reserve(n);
  bool first_col = true;
  for (size_t c : cols) {
    const Column& col = store.column(c);
    ids.clear();
    std::vector<uint32_t> group_rows;
    for (size_t i = 0; i < n; ++i) {
      const size_t phys =
          store.PhysicalRow(pool ? (*pool)[i] : i);
      CellKey key;
      key.acc = first_col ? 0 : out.codes[i];
      const ValueType tag = col.TagAt(phys);
      bool fresh_always = false;
      switch (tag) {
        case ValueType::kNull:
          key.cls = 0;
          key.bits = 0;
          break;
        case ValueType::kInt:
        case ValueType::kDouble: {
          double v = col.nums[phys];
          if (std::isnan(v)) {
            // NaN != NaN under Value equality: each NaN row is its own
            // group.
            fresh_always = true;
            key.cls = 3;
            key.bits = i;
          } else {
            if (v == 0.0) v = 0.0;  // normalize -0.0
            key.cls = 1;
            std::memcpy(&key.bits, &v, sizeof(v));
          }
          break;
        }
        case ValueType::kString:
          key.cls = 2;
          key.bits = col.codes[phys];
          break;
      }
      uint32_t code;
      if (fresh_always) {
        code = static_cast<uint32_t>(group_rows.size());
        group_rows.push_back(static_cast<uint32_t>(i));
      } else {
        auto [it, inserted] =
            ids.emplace(key, static_cast<uint32_t>(group_rows.size()));
        if (inserted) group_rows.push_back(static_cast<uint32_t>(i));
        code = it->second;
      }
      out.codes[i] = code;
    }
    out.group_rows = std::move(group_rows);
    first_col = false;
  }
  out.num_groups = out.group_rows.size();
  return out;
}

bool LikelyMostlyDistinct(const Relation& r, const std::vector<size_t>& cols,
                          const std::vector<size_t>* pool) {
  const ColumnStore& store = r.store();
  const size_t n = pool ? pool->size() : r.size();
  if (n == 0 || cols.empty()) return false;
  const size_t sample = std::min<size_t>(n, 512);
  const size_t stride = n / sample;
  std::unordered_set<uint64_t> seen;
  seen.reserve(sample * 2);
  size_t taken = 0;
  for (size_t i = 0; i < n && taken < sample; i += stride, ++taken) {
    const size_t phys = store.PhysicalRow(pool ? (*pool)[i] : i);
    uint64_t h = 0xcbf29ce484222325ULL;
    for (size_t c : cols) {
      const Column& col = store.column(c);
      uint64_t bits = 0;
      switch (col.TagAt(phys)) {
        case ValueType::kNull:
          bits = 0x9e3779b97f4a7c15ULL;
          break;
        case ValueType::kInt:
        case ValueType::kDouble: {
          double v = col.nums[phys];
          if (v == 0.0) v = 0.0;  // normalize -0.0
          std::memcpy(&bits, &v, sizeof(v));
          break;
        }
        case ValueType::kString:
          bits = (static_cast<uint64_t>(col.codes[phys]) << 2) | 2;
          break;
      }
      h = (h ^ bits) * 0x100000001b3ULL;
    }
    seen.insert(h);
  }
  return seen.size() * 2 >= taken;
}

}  // namespace prefdb
