#include "relation/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace prefdb {

namespace {

// Splits one CSV record (no trailing newline) into raw fields.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

Relation ReadCsv(const std::string& csv_text, const Schema& schema) {
  std::istringstream in(csv_text);
  std::string line;
  Relation rel(schema);
  bool header = true;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (header) {
      if (fields.size() != schema.size()) {
        throw std::invalid_argument("CSV header arity mismatch");
      }
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i] != schema.at(i).name) {
          throw std::invalid_argument("CSV header column '" + fields[i] +
                                      "' does not match schema attribute '" +
                                      schema.at(i).name + "'");
        }
      }
      header = false;
      continue;
    }
    if (fields.size() != schema.size()) {
      throw std::invalid_argument("CSV row " + std::to_string(lineno) +
                                  " arity mismatch");
    }
    Tuple t;
    for (size_t i = 0; i < fields.size(); ++i) {
      auto v = ParseValue(fields[i], schema.at(i).type);
      if (!v) {
        throw std::invalid_argument("CSV row " + std::to_string(lineno) +
                                    ": cannot parse '" + fields[i] + "' as " +
                                    ValueTypeName(schema.at(i).type));
      }
      t.Append(std::move(*v));
    }
    rel.Add(std::move(t));
  }
  return rel;
}

Relation ReadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open CSV file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadCsv(buf.str(), schema);
}

std::string WriteCsv(const Relation& rel) {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
      if (c == '"') out += "\"\"";
      else out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  const Schema& schema = rel.schema();
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i) out += ',';
    out += escape(schema.at(i).name);
  }
  out += '\n';
  for (const Tuple& t : rel.tuples()) {
    for (size_t i = 0; i < t.size(); ++i) {
      if (i) out += ',';
      const Value& v = t[i];
      if (v.is_null()) {
        // empty field
      } else if (v.is_string()) {
        out += escape(v.as_string());
      } else if (v.is_int()) {
        out += std::to_string(v.as_int());
      } else {
        std::ostringstream num;
        num << v.as_double();
        out += num.str();
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace prefdb
