// Minimal CSV import/export so example applications can ship datasets.

#ifndef PREFDB_RELATION_CSV_H_
#define PREFDB_RELATION_CSV_H_

#include <string>

#include "relation/relation.h"

namespace prefdb {

/// Parses CSV text into a relation using the given schema; the first line
/// must be a header whose column names match the schema order. Fields are
/// comma-separated; double quotes delimit fields containing commas; "" is
/// an escaped quote. Malformed rows raise std::invalid_argument.
Relation ReadCsv(const std::string& csv_text, const Schema& schema);

/// Reads a CSV file from disk. Throws std::runtime_error if unreadable.
Relation ReadCsvFile(const std::string& path, const Schema& schema);

/// Serializes a relation to CSV (header + rows; strings unquoted unless
/// they contain a comma/quote/newline).
std::string WriteCsv(const Relation& rel);

}  // namespace prefdb

#endif  // PREFDB_RELATION_CSV_H_
