#include "relation/schema.h"

namespace prefdb {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return std::nullopt;
}

size_t Schema::Add(Attribute attr) {
  if (auto idx = IndexOf(attr.name)) return *idx;
  attributes_.push_back(std::move(attr));
  return attributes_.size() - 1;
}

Schema Schema::Project(const std::vector<std::string>& names) const {
  Schema out;
  for (const auto& name : names) {
    if (auto idx = IndexOf(name)) out.Add(attributes_[*idx]);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ":";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace prefdb
