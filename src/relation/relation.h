// In-memory relations ("database sets R" of Kießling §5.1) with the
// relational operations preference evaluation needs: projection, selection,
// distinct, sorting, grouping, set operations by row identity.

#ifndef PREFDB_RELATION_RELATION_H_
#define PREFDB_RELATION_RELATION_H_

#include <functional>
#include <initializer_list>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/schema.h"
#include "relation/tuple.h"

namespace prefdb {

/// A database set R: a schema plus a bag (duplicates allowed) of tuples.
/// Under the closed world assumption this captures "the currently valid
/// state of the real world" (§5.1) against which preference queries do
/// their match-making.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& at(size_t i) const { return tuples_[i]; }

  /// Appends a row; the arity must match the schema.
  void Add(Tuple t);
  void Add(std::initializer_list<Value> values) { Add(Tuple(values)); }

  /// Resolves attribute names to column indices; throws std::out_of_range
  /// on an unknown attribute (programming error in a query plan).
  std::vector<size_t> ResolveColumns(
      const std::vector<std::string>& names) const;

  /// Projection π_names(R) as a new relation (bag semantics).
  Relation Project(const std::vector<std::string>& names) const;

  /// Hard selection σ_pred(R).
  Relation Filter(const std::function<bool(const Tuple&)>& pred) const;

  /// Duplicate elimination over whole rows.
  Relation Distinct() const;

  /// The distinct projections R[A] of Def. 14(a), as raw tuples.
  std::vector<Tuple> DistinctProjections(
      const std::vector<std::string>& names) const;

  /// Deterministic sort by the Value total order over the given columns
  /// (all columns if empty).
  Relation Sorted(const std::vector<std::string>& names = {}) const;

  /// Groups row indices by equal values of the given columns. The map key
  /// is the group's projection tuple. Used by σ[P groupby A](R) (Def. 16).
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> GroupIndicesBy(
      const std::vector<size_t>& cols) const;

  /// Builds a relation from a subset of row indices of this relation.
  Relation SelectRows(const std::vector<size_t>& row_indices) const;

  /// Set-like helpers over row-index vectors (sorted ascending).
  static std::vector<size_t> IndexIntersect(const std::vector<size_t>& a,
                                            const std::vector<size_t>& b);
  static std::vector<size_t> IndexUnion(const std::vector<size_t>& a,
                                        const std::vector<size_t>& b);

  bool operator==(const Relation& other) const {
    return schema_ == other.schema_ && tuples_ == other.tuples_;
  }

  /// Multiset equality of rows ignoring order (for test assertions).
  bool SameRows(const Relation& other) const;

  /// ASCII table rendering.
  std::string ToString(size_t max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace prefdb

#endif  // PREFDB_RELATION_RELATION_H_
