// In-memory relations ("database sets R" of Kießling §5.1) with the
// relational operations preference evaluation needs: projection, selection,
// distinct, sorting, grouping, set operations by row identity.
//
// Storage is column-major (SoA, see column_store.h): this class is the
// row-oriented façade. Row accessors materialize lazily; SelectRows /
// Filter / Sorted / Project produce index views or column-sharing
// relations instead of copying rows, and copying a Relation shares the
// column buffers (per-column copy-on-write on the next mutation).

#ifndef PREFDB_RELATION_RELATION_H_
#define PREFDB_RELATION_RELATION_H_

#include <atomic>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "relation/column_store.h"
#include "relation/schema.h"
#include "relation/tuple.h"

namespace prefdb {

/// A database set R: a schema plus a bag (duplicates allowed) of tuples.
/// Under the closed world assumption this captures "the currently valid
/// state of the real world" (§5.1) against which preference queries do
/// their match-making.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema)
      : schema_(std::move(schema)), store_(schema_.size()) {}
  Relation(Schema schema, std::vector<Tuple> tuples);

  Relation(const Relation& other)
      : schema_(other.schema_), store_(other.store_) {}
  Relation(Relation&& other) noexcept
      : schema_(std::move(other.schema_)), store_(std::move(other.store_)) {}
  Relation& operator=(const Relation& other);
  Relation& operator=(Relation&& other) noexcept;

  const Schema& schema() const { return schema_; }

  /// Row-compatibility view: materializes (once, thread-safely) a tuple
  /// vector over the columnar store. Prefer RowAt/ValueAt on hot paths —
  /// they touch only the requested cells.
  const std::vector<Tuple>& tuples() const;

  size_t size() const { return store_.rows(); }
  bool empty() const { return store_.rows() == 0; }
  const Tuple& at(size_t i) const { return tuples()[i]; }

  /// Materializes a single row from the column buffers (no cache).
  Tuple RowAt(size_t i) const { return store_.MaterializeRow(i); }
  /// Materializes a single cell from the column buffers.
  Value ValueAt(size_t row, size_t col) const {
    return store_.ValueAt(row, col);
  }
  /// The columnar storage, for columnar scans and zero-copy compilation.
  const ColumnStore& store() const { return store_; }

  /// Appends a row; the arity must match the schema.
  void Add(Tuple t);
  void Add(std::initializer_list<Value> values) { Add(Tuple(values)); }

  /// Resolves attribute names to column indices; throws std::out_of_range
  /// on an unknown attribute (programming error in a query plan).
  std::vector<size_t> ResolveColumns(
      const std::vector<std::string>& names) const;

  /// Projection π_names(R) as a new relation (bag semantics). Shares the
  /// projected column buffers — no row copies.
  Relation Project(const std::vector<std::string>& names) const;

  /// Hard selection σ_pred(R); the result is an index view.
  Relation Filter(const std::function<bool(const Tuple&)>& pred) const;

  /// Duplicate elimination over whole rows (columnar scan, index view).
  Relation Distinct() const;

  /// The distinct projections R[A] of Def. 14(a), as raw tuples.
  std::vector<Tuple> DistinctProjections(
      const std::vector<std::string>& names) const;

  /// Deterministic sort by the Value total order over the given columns
  /// (all columns if empty); the result is an index view.
  Relation Sorted(const std::vector<std::string>& names = {}) const;

  /// Groups row indices by equal values of the given columns. The map key
  /// is the group's projection tuple. Used by σ[P groupby A](R) (Def. 16).
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> GroupIndicesBy(
      const std::vector<size_t>& cols) const;

  /// Builds a relation from a subset of row indices of this relation —
  /// an index view over the shared column buffers (materialized when the
  /// selection drops at least half the rows, so it never pins them).
  Relation SelectRows(const std::vector<size_t>& row_indices) const;

  /// Set-like helpers over row-index vectors (sorted ascending).
  static std::vector<size_t> IndexIntersect(const std::vector<size_t>& a,
                                            const std::vector<size_t>& b);
  static std::vector<size_t> IndexUnion(const std::vector<size_t>& a,
                                        const std::vector<size_t>& b);

  /// Schema + rowwise Value equality (order-sensitive).
  bool operator==(const Relation& other) const;

  /// Multiset equality of rows ignoring order (for test assertions).
  bool SameRows(const Relation& other) const;

  /// ASCII table rendering.
  std::string ToString(size_t max_rows = 50) const;

 private:
  void InvalidateRowCache();

  Schema schema_;
  ColumnStore store_;

  // Lazy row-compatibility cache: double-checked publish so shared
  // immutable snapshots can serve tuples()/at() from any thread.
  mutable std::mutex cache_mu_;
  mutable std::shared_ptr<const std::vector<Tuple>> tuple_cache_;
  mutable std::atomic<const std::vector<Tuple>*> cache_ptr_{nullptr};
};

}  // namespace prefdb

#endif  // PREFDB_RELATION_RELATION_H_
