#include "relation/relation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace prefdb {

namespace {

/// Three-way compare of two cells of one column by the Value total order
/// (NULL < numeric < string; numerics by widened value), reading the
/// column buffers directly — no Value materialization, no string copies.
int CompareCells(const Column& col, size_t a, size_t b) {
  auto klass = [](ValueType t) {
    if (t == ValueType::kNull) return 0;
    if (t == ValueType::kString) return 2;
    return 1;
  };
  const int ka = klass(col.TagAt(a));
  const int kb = klass(col.TagAt(b));
  if (ka != kb) return ka < kb ? -1 : 1;
  if (ka == 0) return 0;
  if (ka == 1) {
    const double va = col.nums[a];
    const double vb = col.nums[b];
    if (va < vb) return -1;
    if (vb < va) return 1;
    return 0;
  }
  return col.dict->At(col.codes[a]).compare(col.dict->At(col.codes[b]));
}

/// Cell equality across two stores, consistent with Value::operator==
/// (numeric widening; NULL == NULL; NaN != NaN).
bool CellsEqual(const Column& ca, size_t a, const Column& cb, size_t b) {
  const ValueType ta = ca.TagAt(a);
  const ValueType tb = cb.TagAt(b);
  const bool na = ta == ValueType::kInt || ta == ValueType::kDouble;
  const bool nb = tb == ValueType::kInt || tb == ValueType::kDouble;
  if (na && nb) return ca.nums[a] == cb.nums[b];
  if (ta != tb) return false;
  if (ta == ValueType::kNull) return true;
  if (ta == ValueType::kString) {
    if (ca.dict == cb.dict) return ca.codes[a] == cb.codes[b];
    return ca.dict->At(ca.codes[a]) == cb.dict->At(cb.codes[b]);
  }
  return false;  // unreachable: numeric pairs handled above
}

}  // namespace

Relation::Relation(Schema schema, std::vector<Tuple> tuples)
    : schema_(std::move(schema)), store_(schema_.size()) {
  for (Tuple& t : tuples) Add(std::move(t));
}

Relation& Relation::operator=(const Relation& other) {
  if (this != &other) {
    schema_ = other.schema_;
    store_ = other.store_;
    InvalidateRowCache();
  }
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    store_ = std::move(other.store_);
    InvalidateRowCache();
  }
  return *this;
}

void Relation::InvalidateRowCache() {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_ptr_.store(nullptr, std::memory_order_release);
  tuple_cache_.reset();
}

const std::vector<Tuple>& Relation::tuples() const {
  if (const auto* cached = cache_ptr_.load(std::memory_order_acquire)) {
    return *cached;
  }
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (tuple_cache_ == nullptr) {
    auto rows = std::make_shared<std::vector<Tuple>>();
    rows->reserve(store_.rows());
    for (size_t i = 0; i < store_.rows(); ++i) {
      rows->push_back(store_.MaterializeRow(i));
    }
    tuple_cache_ = std::move(rows);
    cache_ptr_.store(tuple_cache_.get(), std::memory_order_release);
  }
  return *tuple_cache_;
}

void Relation::Add(Tuple t) {
  if (t.size() != schema_.size()) {
    throw std::invalid_argument("tuple arity " + std::to_string(t.size()) +
                                " does not match schema " +
                                schema_.ToString());
  }
  store_.AppendRow(t);
  if (cache_ptr_.load(std::memory_order_acquire) != nullptr) {
    InvalidateRowCache();
  }
}

std::vector<size_t> Relation::ResolveColumns(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    auto idx = schema_.IndexOf(name);
    if (!idx) {
      throw std::out_of_range("unknown attribute '" + name + "' in schema " +
                              schema_.ToString());
    }
    out.push_back(*idx);
  }
  return out;
}

Relation Relation::Project(const std::vector<std::string>& names) const {
  std::vector<size_t> cols = ResolveColumns(names);
  Relation out;
  out.schema_ = schema_.Project(names);
  out.store_ = store_.ProjectColumns(cols);
  return out;
}

Relation Relation::Filter(
    const std::function<bool(const Tuple&)>& pred) const {
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < size(); ++i) {
    if (pred(RowAt(i))) rows.push_back(static_cast<uint32_t>(i));
  }
  Relation out;
  out.schema_ = schema_;
  out.store_ = ColumnStore::View(store_, std::move(rows));
  return out;
}

Relation Relation::Distinct() const {
  std::vector<size_t> cols(schema_.size());
  std::iota(cols.begin(), cols.end(), 0);
  GroupCoding coding = ComputeGroupCoding(*this, cols);
  std::vector<uint32_t> rows(coding.group_rows.begin(),
                             coding.group_rows.end());
  std::sort(rows.begin(), rows.end());
  Relation out;
  out.schema_ = schema_;
  out.store_ = ColumnStore::View(store_, std::move(rows));
  return out;
}

std::vector<Tuple> Relation::DistinctProjections(
    const std::vector<std::string>& names) const {
  std::vector<size_t> cols = ResolveColumns(names);
  GroupCoding coding = ComputeGroupCoding(*this, cols);
  std::vector<Tuple> out;
  out.reserve(coding.num_groups);
  for (uint32_t rep : coding.group_rows) {
    std::vector<Value> values;
    values.reserve(cols.size());
    for (size_t c : cols) values.push_back(ValueAt(rep, c));
    out.emplace_back(std::move(values));
  }
  return out;
}

Relation Relation::Sorted(const std::vector<std::string>& names) const {
  std::vector<size_t> cols;
  if (names.empty()) {
    for (size_t i = 0; i < schema_.size(); ++i) cols.push_back(i);
  } else {
    cols = ResolveColumns(names);
  }
  std::vector<uint32_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [this, &cols](uint32_t a, uint32_t b) {
                     const size_t pa = store_.PhysicalRow(a);
                     const size_t pb = store_.PhysicalRow(b);
                     for (size_t c : cols) {
                       int cmp = CompareCells(store_.column(c), pa, pb);
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  Relation out;
  out.schema_ = schema_;
  out.store_ = ColumnStore::View(store_, std::move(order));
  return out;
}

std::unordered_map<Tuple, std::vector<size_t>, TupleHash>
Relation::GroupIndicesBy(const std::vector<size_t>& cols) const {
  GroupCoding coding = ComputeGroupCoding(*this, cols);
  std::vector<std::vector<size_t>> by_code(coding.num_groups);
  for (size_t i = 0; i < coding.codes.size(); ++i) {
    by_code[coding.codes[i]].push_back(i);
  }
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> groups;
  groups.reserve(coding.num_groups);
  for (size_t g = 0; g < coding.num_groups; ++g) {
    std::vector<Value> key;
    key.reserve(cols.size());
    for (size_t c : cols) key.push_back(ValueAt(coding.group_rows[g], c));
    groups.emplace(Tuple(std::move(key)), std::move(by_code[g]));
  }
  return groups;
}

Relation Relation::SelectRows(const std::vector<size_t>& row_indices) const {
  std::vector<uint32_t> rows;
  rows.reserve(row_indices.size());
  for (size_t i : row_indices) rows.push_back(static_cast<uint32_t>(i));
  Relation out;
  out.schema_ = schema_;
  out.store_ = ColumnStore::View(store_, std::move(rows));
  return out;
}

std::vector<size_t> Relation::IndexIntersect(const std::vector<size_t>& a,
                                             const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> Relation::IndexUnion(const std::vector<size_t>& a,
                                         const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool Relation::operator==(const Relation& other) const {
  if (schema_ != other.schema_ || size() != other.size()) return false;
  for (size_t c = 0; c < schema_.size(); ++c) {
    const Column& ca = store_.column(c);
    const Column& cb = other.store_.column(c);
    for (size_t i = 0; i < size(); ++i) {
      if (!CellsEqual(ca, store_.PhysicalRow(i), cb,
                      other.store_.PhysicalRow(i))) {
        return false;
      }
    }
  }
  return true;
}

bool Relation::SameRows(const Relation& other) const {
  if (schema_ != other.schema_ || size() != other.size()) return false;
  std::unordered_map<Tuple, int, TupleHash> counts;
  for (size_t i = 0; i < size(); ++i) counts[RowAt(i)]++;
  for (size_t i = 0; i < other.size(); ++i) {
    auto it = counts.find(other.RowAt(i));
    if (it == counts.end() || it->second == 0) return false;
    it->second--;
  }
  return true;
}

std::string Relation::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<std::string> headers;
  std::vector<size_t> widths;
  for (const auto& attr : schema_.attributes()) {
    headers.push_back(attr.name);
    widths.push_back(attr.name.size());
  }
  size_t shown = std::min(max_rows, size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t i = 0; i < shown; ++i) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      std::string s = ValueAt(i, c).ToString();
      cells[i].push_back(s);
      widths[c] = std::max(widths[c], s.size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (size_t c = 0; c < headers.size(); ++c) {
    out += (c ? " | " : "| ") + pad(headers[c], widths[c]);
  }
  out += " |\n";
  for (size_t c = 0; c < headers.size(); ++c) {
    out += (c ? "-+-" : "+-") + std::string(widths[c], '-');
  }
  out += "-+\n";
  for (size_t i = 0; i < shown; ++i) {
    for (size_t c = 0; c < headers.size(); ++c) {
      out += (c ? " | " : "| ") + pad(cells[i][c], widths[c]);
    }
    out += " |\n";
  }
  if (shown < size()) {
    out += "... (" + std::to_string(size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace prefdb
