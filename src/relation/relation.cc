#include "relation/relation.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace prefdb {

void Relation::Add(Tuple t) {
  if (t.size() != schema_.size()) {
    throw std::invalid_argument("tuple arity " + std::to_string(t.size()) +
                                " does not match schema " +
                                schema_.ToString());
  }
  tuples_.push_back(std::move(t));
}

std::vector<size_t> Relation::ResolveColumns(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    auto idx = schema_.IndexOf(name);
    if (!idx) {
      throw std::out_of_range("unknown attribute '" + name + "' in schema " +
                              schema_.ToString());
    }
    out.push_back(*idx);
  }
  return out;
}

Relation Relation::Project(const std::vector<std::string>& names) const {
  std::vector<size_t> cols = ResolveColumns(names);
  Relation out(schema_.Project(names));
  for (const Tuple& t : tuples_) out.Add(t.Project(cols));
  return out;
}

Relation Relation::Filter(
    const std::function<bool(const Tuple&)>& pred) const {
  Relation out(schema_);
  for (const Tuple& t : tuples_) {
    if (pred(t)) out.Add(t);
  }
  return out;
}

Relation Relation::Distinct() const {
  Relation out(schema_);
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& t : tuples_) {
    if (seen.insert(t).second) out.Add(t);
  }
  return out;
}

std::vector<Tuple> Relation::DistinctProjections(
    const std::vector<std::string>& names) const {
  std::vector<size_t> cols = ResolveColumns(names);
  std::vector<Tuple> out;
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& t : tuples_) {
    Tuple proj = t.Project(cols);
    if (seen.insert(proj).second) out.push_back(std::move(proj));
  }
  return out;
}

Relation Relation::Sorted(const std::vector<std::string>& names) const {
  std::vector<size_t> cols;
  if (names.empty()) {
    for (size_t i = 0; i < schema_.size(); ++i) cols.push_back(i);
  } else {
    cols = ResolveColumns(names);
  }
  Relation out = *this;
  std::stable_sort(out.tuples_.begin(), out.tuples_.end(),
                   [&cols](const Tuple& a, const Tuple& b) {
                     for (size_t c : cols) {
                       if (a[c] < b[c]) return true;
                       if (b[c] < a[c]) return false;
                     }
                     return false;
                   });
  return out;
}

std::unordered_map<Tuple, std::vector<size_t>, TupleHash>
Relation::GroupIndicesBy(const std::vector<size_t>& cols) const {
  std::unordered_map<Tuple, std::vector<size_t>, TupleHash> groups;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    groups[tuples_[i].Project(cols)].push_back(i);
  }
  return groups;
}

Relation Relation::SelectRows(const std::vector<size_t>& row_indices) const {
  Relation out(schema_);
  for (size_t i : row_indices) out.Add(tuples_[i]);
  return out;
}

std::vector<size_t> Relation::IndexIntersect(const std::vector<size_t>& a,
                                             const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<size_t> Relation::IndexUnion(const std::vector<size_t>& a,
                                         const std::vector<size_t>& b) {
  std::vector<size_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool Relation::SameRows(const Relation& other) const {
  if (schema_ != other.schema_ || size() != other.size()) return false;
  std::unordered_map<Tuple, int, TupleHash> counts;
  for (const Tuple& t : tuples_) counts[t]++;
  for (const Tuple& t : other.tuples_) {
    auto it = counts.find(t);
    if (it == counts.end() || it->second == 0) return false;
    it->second--;
  }
  return true;
}

std::string Relation::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<std::string> headers;
  std::vector<size_t> widths;
  for (const auto& attr : schema_.attributes()) {
    headers.push_back(attr.name);
    widths.push_back(attr.name.size());
  }
  size_t shown = std::min(max_rows, tuples_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t i = 0; i < shown; ++i) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      std::string s = tuples_[i][c].ToString();
      cells[i].push_back(s);
      widths[c] = std::max(widths[c], s.size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out;
  for (size_t c = 0; c < headers.size(); ++c) {
    out += (c ? " | " : "| ") + pad(headers[c], widths[c]);
  }
  out += " |\n";
  for (size_t c = 0; c < headers.size(); ++c) {
    out += (c ? "-+-" : "+-") + std::string(widths[c], '-');
  }
  out += "-+\n";
  for (size_t i = 0; i < shown; ++i) {
    for (size_t c = 0; c < headers.size(); ++c) {
      out += (c ? " | " : "| ") + pad(cells[i][c], widths[c]);
    }
    out += " |\n";
  }
  if (shown < tuples_.size()) {
    out += "... (" + std::to_string(tuples_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace prefdb
