// Interactive Preference SQL shell over the synthetic marketplace, backed
// by the stateful engine: repeated statements hit the plan cache and the
// compiled score-table cache, and every result reports per-phase timings.
//
//   $ ./build/examples/psql_repl
//   prefdb> SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage);
//   prefdb> SELECT TOP 5 oid, price FROM car PREFERRING LOWEST(price);
//   prefdb> EXPLAIN SELECT * FROM car SKYLINE OF price MIN, mileage MIN;
//   prefdb> \tables        -- list catalog tables
//   prefdb> \cache         -- plan/exec cache statistics
//   prefdb> \quit
//
// Reads statements from stdin (also works non-interactively via a pipe).
// Syntax errors are reported with line/column and a caret.

#include <cstdio>
#include <iostream>
#include <string>

#include "prefdb.h"

using namespace prefdb;  // NOLINT(google-build-using-namespace): example code, brevity wins

int main() {
  Engine engine;
  engine.RegisterTable("car", GenerateCars(5000, 2002));
  engine.RegisterTable("trips", GenerateTrips(2000, 2002));

  std::printf("prefdb Preference SQL shell. Tables: car (5000 rows), trips "
              "(2000 rows).\n");
  std::printf("Try: SELECT oid, price, mileage FROM car PREFERRING "
              "LOWEST(price) AND LOWEST(mileage);\n");
  std::printf("     SELECT TOP 5 oid, price FROM car PREFERRING "
              "LOWEST(price);\n");
  std::printf("     \\tables, \\cache, \\quit\n");

  std::string line;
  while (true) {
    std::printf("prefdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\tables") {
      for (const auto& name : engine.TableNames()) {
        std::printf("  %s (%zu rows, version %llu)\n", name.c_str(),
                    engine.Snapshot(name)->size(),
                    static_cast<unsigned long long>(
                        engine.TableVersion(name)));
      }
      continue;
    }
    if (line == "\\cache") {
      Engine::CacheStats cs = engine.cache_stats();
      std::printf("  plan cache: %zu hits / %zu misses\n", cs.plan_hits,
                  cs.plan_misses);
      std::printf("  exec cache: %zu hits / %zu misses, %zu invalidations\n",
                  cs.exec_hits, cs.exec_misses, cs.invalidations);
      continue;
    }
    try {
      psql::QueryResult res = engine.Execute(line);
      if (!res.plan_details.empty()) {
        std::printf("%s", res.plan_details.c_str());
      }
      std::printf("%s", res.relation.ToString(20).c_str());
      if (!res.utilities.empty()) {
        std::printf("utilities:");
        for (size_t i = 0; i < res.utilities.size() && i < 20; ++i) {
          std::printf(" %.1f", res.utilities[i]);
        }
        std::printf("\n");
      }
      std::printf("(%zu rows)  [%s]\n", res.relation.size(), res.plan.c_str());
      std::printf("%s\n", res.stats.ToString().c_str());
    } catch (const psql::SyntaxError& e) {
      std::printf("%s\n", psql::FormatSyntaxError(line, e).c_str());
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::printf("\nbye.\n");
  return 0;
}
