// Interactive Preference SQL shell over the synthetic marketplace.
//
//   $ ./build/examples/psql_repl
//   prefdb> SELECT * FROM car PREFERRING LOWEST(price) AND LOWEST(mileage);
//   prefdb> EXPLAIN SELECT * FROM car SKYLINE OF price MIN, mileage MIN;
//   prefdb> \tables        -- list catalog tables
//   prefdb> \quit
//
// Reads statements from stdin (also works non-interactively via a pipe).

#include <cstdio>
#include <iostream>
#include <string>

#include "prefdb.h"

using namespace prefdb;  // NOLINT — example code

int main() {
  psql::Catalog catalog;
  catalog.Register("car", GenerateCars(5000, 2002));
  catalog.Register("trips", GenerateTrips(2000, 2002));

  std::printf("prefdb Preference SQL shell. Tables: car (5000 rows), trips "
              "(2000 rows).\n");
  std::printf("Try: SELECT oid, price, mileage FROM car PREFERRING "
              "LOWEST(price) AND LOWEST(mileage);\n");
  std::printf("     \\tables, \\quit\n");

  std::string line;
  while (true) {
    std::printf("prefdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;
    if (line == "\\quit" || line == "\\q") break;
    if (line == "\\tables") {
      for (const auto& name : catalog.TableNames()) {
        std::printf("  %s (%zu rows)\n", name.c_str(),
                    catalog.Get(name).size());
      }
      continue;
    }
    try {
      psql::QueryResult res = psql::ExecuteQuery(line, catalog);
      if (!res.plan_details.empty()) {
        std::printf("%s", res.plan_details.c_str());
      }
      std::printf("%s", res.relation.ToString(20).c_str());
      std::printf("(%zu rows)  [%s]\n", res.relation.size(),
                  res.plan.c_str());
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  std::printf("\nbye.\n");
  return 0;
}
