// Skyline explorer: the 'SKYLINE OF' fragment (§6.1) on the classic
// [BKS01] vector workloads — compares the evaluation algorithms, prints
// skyline sizes per correlation, and shows the non-monotonic filter
// behavior of §5.1.
//
//   $ ./build/examples/skyline_explorer [n] [d]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "prefdb.h"

using namespace prefdb;  // NOLINT(google-build-using-namespace): example code, brevity wins

namespace {

double MillisFor(const Relation& r, const PrefPtr& p, BmoAlgorithm algo) {
  auto start = std::chrono::steady_clock::now();
  std::vector<size_t> rows = BmoIndices(r, p, {algo});
  auto stop = std::chrono::steady_clock::now();
  (void)rows;
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 20000;
  size_t d = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 3;

  std::vector<PrefPtr> dims;
  for (size_t i = 0; i < d; ++i) dims.push_back(Highest("d" + std::to_string(i)));
  PrefPtr skyline = Pareto(dims);
  std::printf("SKYLINE OF d0, ..., d%zu (all HIGHEST) over n=%zu points\n\n",
              d - 1, n);

  std::printf("%-16s %10s %10s %10s %10s\n", "correlation", "skyline",
              "bnl[ms]", "sfs[ms]", "dc[ms]");
  for (Correlation corr : {Correlation::kCorrelated,
                           Correlation::kIndependent,
                           Correlation::kAntiCorrelated}) {
    Relation r = GenerateVectors(n, d, corr, 123);
    size_t size = ResultSize(r, skyline);
    std::printf("%-16s %10zu %10.1f %10.1f %10.1f\n", CorrelationName(corr),
                size, MillisFor(r, skyline, BmoAlgorithm::kBlockNestedLoop),
                MillisFor(r, skyline, BmoAlgorithm::kSortFilter),
                MillisFor(r, skyline, BmoAlgorithm::kDivideConquer));
  }

  // Non-monotonicity demo: grow the relation, watch the skyline shrink.
  std::printf("\nNon-monotonicity (Example 9 at scale): inserting better "
              "points shrinks the answer.\n");
  Relation r = GenerateVectors(n, 2, Correlation::kAntiCorrelated, 5);
  PrefPtr sky2 = Pareto(Highest("d0"), Highest("d1"));
  std::printf("  before: skyline of %zu points = %zu\n", r.size(),
              ResultSize(r, sky2));
  // Insert a utopia point dominating everything.
  r.Add({Value(2.0), Value(2.0)});
  std::printf("  after adding a dominating point: skyline = %zu\n",
              ResultSize(r, sky2));

  // Small better-than graph on a sample, to visualize dominance.
  Relation sample = GenerateVectors(8, 2, Correlation::kAntiCorrelated, 9);
  BetterThanGraph g(sample, sky2);
  std::printf("\nBetter-than graph of an 8-point sample:\n%s",
              g.ToText().c_str());
  std::printf("\nGraphviz (pipe to `dot -Tpng`):\n%s", g.ToDot().c_str());
  return 0;
}
