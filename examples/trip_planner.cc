// Trip planning with quality supervision: the paper's second §6.1 query —
// AROUND preferences on start date and duration, with a BUT ONLY clause
// that rejects answers farther than a quality threshold.
//
//   $ ./build/examples/trip_planner [n_trips]

#include <cstdio>
#include <cstdlib>

#include "prefdb.h"

using namespace prefdb;  // NOLINT(google-build-using-namespace): example code, brevity wins

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 2000;
  // start_date is the day offset within the booking season (a date maps to
  // an ordinal; '2001/11/23' in the paper -> day 57 in our season).
  Relation trips = GenerateTrips(n, 77);
  Engine engine;
  engine.RegisterTable("trips", trips);
  std::printf("Trip catalog with %zu offers.\n\n", trips.size());

  const char* wish =
      "SELECT destination, start_date, duration, price FROM trips "
      "PREFERRING start_date AROUND 57 AND duration AROUND 14 "
      "BUT ONLY DISTANCE(start_date) <= 2 AND DISTANCE(duration) <= 2";
  std::printf("Query:\n  %s\n\n", wish);
  auto res = engine.Execute(wish);
  std::printf("plan: %s\n\n", res.plan.c_str());
  if (res.relation.empty()) {
    std::printf("No offer within the quality bounds — BUT ONLY may reject "
                "everything (unlike plain BMO).\n");
  } else {
    std::printf("Offers within quality bounds:\n%s",
                res.relation.ToString().c_str());
  }

  // Relax the supervision and rank the alternatives by a combined utility
  // instead (the ranked query model of section 6.2) — straight from SQL:
  std::printf("\nWithout BUT ONLY, ranked from SQL (k-best, k = 5):\n");
  auto sql_ranked = engine.Execute(
      "SELECT TOP 5 destination, start_date, duration, price FROM trips "
      "PREFERRING start_date AROUND 57 AND duration AROUND 14");
  for (size_t i = 0; i < sql_ranked.relation.size(); ++i) {
    std::printf("  #%zu utility=%8.1f  %s\n", i + 1, sql_ranked.utilities[i],
                sql_ranked.relation.at(i).ToString().c_str());
  }

  std::printf("\nAnd with an explicit weighted rank(F) utility:\n");
  Relation pool =
      engine
          .Execute("SELECT destination, start_date, duration, price "
                   "FROM trips PREFERRING start_date AROUND 57 AND "
                   "duration AROUND 14")
          .relation;
  // Utility: closeness to the date/duration targets, cheaper is better.
  PrefPtr rank = RankWeightedSum(
      {3.0, 5.0, 1.0},
      {Around("start_date", 57), Around("duration", 14), Lowest("price")});
  RankedResult ranked = TopK(
      trips.Project({"destination", "start_date", "duration", "price"}),
      rank, 5);
  for (size_t i = 0; i < ranked.relation.size(); ++i) {
    std::printf("  #%zu utility=%8.1f  %s\n", i + 1, ranked.utilities[i],
                ranked.relation.at(i).ToString().c_str());
  }
  std::printf("\nBMO pool (Pareto winners before supervision): %zu offers\n",
              pool.size());
  return 0;
}
