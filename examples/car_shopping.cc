// The paper's Example 6 "preference engineering" scenario, end to end:
// Julia's wish list, dealer Michael's domain knowledge and vendor
// preference, Leslie's conflicting color taste — executed against a
// generated used-car market.
//
//   $ ./build/examples/car_shopping [n_cars]

#include <cstdio>
#include <cstdlib>

#include "prefdb.h"

using namespace prefdb;  // NOLINT(google-build-using-namespace): example code, brevity wins

namespace {

void Show(const char* title, const Relation& r, size_t max_rows = 8) {
  std::printf("\n%s (%zu rows):\n%s", title, r.size(),
              r.ToString(max_rows).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  size_t n = argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 5000;
  Relation market = GenerateCars(n, 2001);
  std::printf("Used-car market with %zu offers.\n", market.size());

  // --- Julia's personal wish list (customer preferences) ---
  PrefPtr p1 = PosPos("category", {"cabriolet"}, {"roadster"});
  PrefPtr p2 = Pos("transmission", {"automatic"});
  PrefPtr p3 = Around("horsepower", 100);
  PrefPtr p4 = Lowest("price");
  PrefPtr p5 = Neg("color", {"gray"});

  // Q1 = P5 & ((P1 (x) P2 (x) P3) & P4): color matters most, then the
  // equally-important category/transmission/horsepower block, then price.
  PrefPtr q1 = Prioritized(p5, Prioritized(Pareto({p1, p2, p3}), p4));
  std::printf("\nJulia's Q1:\n  %s\n", q1->ToString().c_str());
  Show("Q1 best matches", Bmo(market, q1));

  // --- Dealer Michael adds domain knowledge and his own interest ---
  PrefPtr p6 = Highest("year");        // ontological knowledge: newer is better
  PrefPtr p7 = Highest("commission");  // the vendor's preference
  PrefPtr q2 = Prioritized(Prioritized(q1, p6), p7);
  std::printf("\nMichael's Q2 = (Q1 & P6) & P7 — customer first, fair play.\n");
  Show("Q2 best matches", Bmo(market, q2));

  // --- Leslie enters: conflicting color taste, price now equally weighted
  PrefPtr p8 = PosNeg("color", {"blue"}, {"gray", "red"});
  PrefPtr q1_star = Prioritized(Pareto({p5, p8, p4}), Pareto({p1, p2, p3}));
  std::printf("\nAdapted Q1* = (P5 (x) P8 (x) P4) & (P1 (x) P2 (x) P3)\n"
              "  (P5 and P8 conflict on 'gray'-adjacent tastes — conflicts "
              "are features, not failures)\n");
  Show("Q1* best matches", Bmo(market, q1_star));

  // --- The same story through Preference SQL ---
  Engine engine;
  engine.RegisterTable("car", market);
  auto res = engine.Execute(
      "SELECT oid, category, color, transmission, horsepower, price "
      "FROM car "
      "PREFERRING color <> 'gray' "
      "CASCADE category = 'cabriolet' ELSE category = 'roadster' AND "
      "transmission = 'automatic' AND horsepower AROUND 100 "
      "CASCADE LOWEST(price)");
  std::printf("\nPreference SQL version of Q1:\n  %s\n",
              res.preference_term.c_str());
  Show("Preference SQL result", res.relation);

  // --- Explain the winner set: the better-than levels on Q1 ---
  BetterThanGraph g(Bmo(market, Pareto({p1, p2, p3})), Pareto({p1, p2, p3}));
  std::printf("\nPareto block winners span %zu level(s) — all level 1, by "
              "construction.\n",
              g.max_level());
  return 0;
}
