// Marketplace: the §7 roadmap features working together — a persistent
// preference repository, preference mining from a click log, two-party
// e-negotiation over the Pareto frontier, and the query optimizer's
// EXPLAIN output.
//
//   $ ./build/examples/marketplace

#include <cstdio>
#include <random>

#include "prefdb.h"

using namespace prefdb;  // NOLINT(google-build-using-namespace): example code, brevity wins

int main() {
  Relation market = GenerateCars(3000, 42);
  Engine engine;
  engine.RegisterTable("car", market);

  // --- 1. A returning customer's profile lives in the engine's
  //        repository; stored wishes run through the same plan/score-table
  //        caches as SQL statements ---
  engine.StorePreference("julia.colors", Neg("color", {"gray"}));
  engine.StorePreference("julia.budget", Around("price", 11000));
  engine.StorePreference(
      "julia.wishes",
      Prioritized(Neg("color", {"gray"}),
                  Pareto(Around("price", 11000), Lowest("mileage"))));
  PreferenceRepository repo = engine.Repository();
  std::printf("Repository (%zu entries):\n%s\n", repo.size(),
              repo.ToText().c_str());
  PreparedQuery julia_query = engine.PrepareStored("car", "julia.wishes");
  std::printf("Julia's best matches: %zu offers (cached plan: %s)\n\n",
              julia_query.Run().relation.size(),
              julia_query.normalized_sql().c_str());

  // --- 2. Mine a new visitor's preference from their click behavior ---
  // Simulated sessions: the visitor always picks the car with the best
  // fuel economy among the shown subset.
  std::mt19937_64 rng(7);
  std::vector<mining::LogEntry> log;
  for (int session = 0; session < 40; ++session) {
    std::vector<size_t> rows;
    for (int i = 0; i < 10; ++i) rows.push_back(rng() % market.size());
    Relation shown = market.SelectRows(rows);
    size_t best = 0;
    size_t fe = *shown.schema().IndexOf("fuel_economy");
    for (size_t i = 1; i < shown.size(); ++i) {
      if (*shown.at(i)[fe].numeric() > *shown.at(best)[fe].numeric()) {
        best = i;
      }
    }
    log.push_back({std::move(shown), {best}});
  }
  mining::MiningResult mined = mining::MinePreferences(log);
  std::printf("Mined from %zu sessions:\n", log.size());
  for (const auto& m : mined.attributes) {
    std::printf("  %-14s %-28s (%s)\n", m.attribute.c_str(),
                m.preference->ToString().c_str(), m.evidence.c_str());
  }

  // --- 3. Buyer vs dealer: e-negotiation over the frontier ---
  PrefPtr buyer = Pareto(Lowest("price"), Lowest("mileage"));
  PrefPtr dealer = Highest("commission");
  NegotiationAnalysis analysis = AnalyzeNegotiation(market, buyer, dealer);
  std::printf("\nNegotiation table (%zu offers on the Pareto frontier):\n",
              analysis.pareto_frontier.size());
  std::printf("  consensus: %zu, buyer-favored: %zu, dealer-favored: %zu, "
              "middle ground: %zu\n",
              analysis.consensus.size(), analysis.party1_favored.size(),
              analysis.party2_favored.size(), analysis.middle_ground.size());
  std::printf("Fairest proposals (regret buyer/dealer = better-than levels "
              "behind each party's favorite):\n");
  for (const CompromiseProposal& p :
       SuggestCompromises(market, buyer, dealer, 3)) {
    std::printf("  regret %zu/%zu: %s\n", p.regret1, p.regret2,
                market.at(p.row).ToString().c_str());
  }

  // --- 4. The optimizer explains itself through Preference SQL ---
  auto res = engine.Execute(
      "EXPLAIN SELECT oid, price, mileage FROM car "
      "PREFERRING LOWEST(price) AND LOWEST(price) AND LOWEST(mileage)");
  std::printf("\nEXPLAIN output:\n%s", res.plan_details.c_str());
  std::printf("pipeline: %s\n", res.plan.c_str());
  return 0;
}
