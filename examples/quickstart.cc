// Quickstart: build a preference, run a BMO query, inspect the result.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API in five minutes: relations, base preferences,
// Pareto/prioritized accumulation, σ[P](R), and the better-than graph.

#include <cstdio>

#include "prefdb.h"

using namespace prefdb;  // NOLINT(google-build-using-namespace): example code, brevity wins

int main() {
  // 1. A database set R (Def. 14): a small hotel table.
  Relation hotels(Schema{{"name", ValueType::kString},
                         {"price", ValueType::kInt},
                         {"stars", ValueType::kInt},
                         {"beach_distance", ValueType::kInt}});
  hotels.Add({"Alpha", 120, 4, 900});
  hotels.Add({"Beach Belle", 150, 3, 50});
  hotels.Add({"Cheap Charm", 60, 2, 1200});
  hotels.Add({"Dune", 95, 4, 300});
  hotels.Add({"Exquisite", 340, 5, 100});
  std::printf("The hotel database:\n%s\n", hotels.ToString().c_str());

  // 2. Wishes as preferences (strict partial orders, Def. 1):
  PrefPtr cheap = Lowest("price");
  PrefPtr close = Around("beach_distance", 100);  // ~100m is perfect
  PrefPtr good = Highest("stars");

  // 3. Equally important wishes combine by Pareto accumulation (Def. 8);
  //    '&' would prioritize instead (Def. 9).
  PrefPtr wish = Pareto({cheap, close, good});
  std::printf("Preference term: %s\n\n", wish->ToString().c_str());

  // 4. The BMO query sigma[P](R) returns the best matches only (Def. 15) —
  //    never empty, never flooding.
  Relation best = Bmo(hotels, wish);
  std::printf("Best matches only:\n%s\n", best.ToString().c_str());

  // 5. Why? The better-than graph (Def. 2) shows the dominance structure.
  BetterThanGraph graph(hotels, wish);
  std::printf("Better-than levels (projections onto the wish attributes):\n%s",
              graph.ToText().c_str());

  // 6. The same query through Preference SQL, served by the stateful
  //    engine (repeated statements reuse the cached plan + score table):
  Engine engine;
  engine.RegisterTable("hotels", hotels);
  auto res = engine.Execute(
      "SELECT name, price FROM hotels "
      "PREFERRING LOWEST(price) AND beach_distance AROUND 100 AND "
      "HIGHEST(stars)");
  std::printf("\nPreference SQL gives the same winners:\n%s",
              res.relation.ToString().c_str());
  std::printf("\nplan: %s\n", res.plan.c_str());

  // 7. Ranked retrieval (§6.2): the k best rows by combined utility
  //    instead of the Pareto frontier.
  auto top = engine.Execute(
      "SELECT TOP 3 name, price FROM hotels "
      "PREFERRING LOWEST(price) AND beach_distance AROUND 100");
  std::printf("\nTOP 3 by combined utility:\n%s",
              top.relation.ToString().c_str());
  return 0;
}
