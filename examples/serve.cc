// Standalone preference query daemon: registers the datagen car/trip
// tables and serves the Preference SQL wire protocol until SIGINT or
// SIGTERM, then drains gracefully. The CI integration-smoke step starts
// this binary and replays the committed query mix against it with
// bench/bench_server.cc --mode check; interactively, poke it with the
// same driver or any src/server/client.h program.
//
//   ./serve --port 5433 --rows 20000 --seed 42 --workers 4

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "prefdb.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace prefdb;

  uint16_t port = 0;  // ephemeral by default; printed below
  size_t rows = 20000;
  uint64_t seed = 42;
  size_t workers = 0;  // hardware concurrency

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--port P] [--rows N] [--seed S] "
                     "[--workers W]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<uint16_t>(std::strtoul(next(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--rows") == 0) {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      workers = std::strtoull(next(), nullptr, 10);
    } else {
      next();  // unknown flag: print usage and exit
    }
  }

  Engine engine;
  engine.RegisterTable("car", GenerateCars(rows, seed));
  engine.RegisterTable("trip", GenerateTrips(rows, seed + 1));

  server::ServerOptions options;
  options.port = port;
  options.num_workers = workers;
  server::Server server(&engine, options);
  server.Start();
  std::printf("prefdb serving car/trip (%zu rows, seed %llu) — "
              "listening on port %u\n",
              rows, static_cast<unsigned long long>(seed), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("draining...\n");
  server.Stop();
  server::ServerStats stats = server.stats();
  std::printf("served %llu queries (%llu errors, %llu overload-rejected, "
              "%llu timed out) over %llu sessions\n",
              static_cast<unsigned long long>(stats.queries_ok),
              static_cast<unsigned long long>(stats.queries_error),
              static_cast<unsigned long long>(stats.queries_rejected_overload),
              static_cast<unsigned long long>(stats.queries_timeout),
              static_cast<unsigned long long>(stats.sessions_accepted));
  return 0;
}
