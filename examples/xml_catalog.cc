// Preference XPATH over an XML product catalog (§6.1, [KHF01]): runs the
// paper's two sample queries Q1 and Q2 against an attribute-rich car
// catalog document.
//
//   $ ./build/examples/xml_catalog

#include <cstdio>

#include "prefdb.h"

using namespace prefdb;          // NOLINT(google-build-using-namespace): example code, brevity wins
using namespace prefdb::pxpath;  // NOLINT(google-build-using-namespace): example code, brevity wins

namespace {

// A compact attribute-rich catalog as a TAMINO-style document.
const char* kCatalog = R"(<CARS>
  <CAR id="1" color="black"  price="9500"  mileage="60000" fuel_economy="30" horsepower="100"/>
  <CAR id="2" color="white"  price="10500" mileage="30000" fuel_economy="28" horsepower="120"/>
  <CAR id="3" color="red"    price="10000" mileage="45000" fuel_economy="34" horsepower="100"/>
  <CAR id="4" color="black"  price="15000" mileage="20000" fuel_economy="34" horsepower="150"/>
  <CAR id="5" color="blue"   price="8000"  mileage="90000" fuel_economy="22" horsepower="90"/>
  <CAR id="6" color="silver" price="9900"  mileage="52000" fuel_economy="31" horsepower="110"/>
</CARS>)";

void Run(const XmlNodePtr& root, const char* label, const char* query) {
  std::printf("%s\n  %s\n", label, query);
  XPathResult res = EvalPreferenceXPath(root, query);
  std::printf("  translated preference: %s\n",
              res.preference_term.empty() ? "(none)"
                                          : res.preference_term.c_str());
  for (const auto& node : res.nodes) {
    std::printf("  -> %s", ToXml(*node).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  XmlNodePtr root = ParseXml(kCatalog);
  std::printf("Catalog with %zu cars.\n\n", root->children.size());

  // The paper's Q1: two equally important HIGHEST wishes (Pareto).
  Run(root, "Q1 (paper, 6.1):",
      "/CARS/CAR #[(@fuel_economy) highest and (@horsepower) highest]#");

  // The paper's Q2: color favorites prior to a price target, cascaded with
  // a mileage wish in a second soft step.
  Run(root, "Q2 (paper, 6.1):",
      "/CARS/CAR #[(@color) in (\"black\", \"white\") prior to (@price) "
      "around 10000]# #[(@mileage) lowest]#");

  // Hard predicates combine with soft selections: exact-match world and
  // preference world in one query.
  Run(root, "Mixed hard + soft:",
      "/CARS/CAR[@price <= 12000] #[(@fuel_economy) highest]#");
  return 0;
}
