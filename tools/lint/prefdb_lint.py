#!/usr/bin/env python3
"""prefdb-lint: project-invariant checks no generic linter knows about.

Every rule here encodes a bug class this repo actually shipped (see the
"Static analysis" section of README.md for the motivating incident behind
each rule):

  prefdb-downcast-preference
      No static_cast / C-style cast to a polymorphic *Preference type.
      Kind-tag downcasts segfaulted when a class shared a kind with a
      different layout (PR 2's IntrinsicLevel bug); use dynamic_cast or
      virtual dispatch.
  prefdb-raw-mutex
      No bare .lock()/.unlock() on std::mutex members — RAII guards only.
      The Engine mutex may only be taken through Engine::Lock() (whose
      try_to_lock-then-block form is recognized), so the contention
      counters feeding CacheStats stay honest.
  prefdb-raw-syscall-server
      No raw read/write/accept/send/recv in src/server/ outside
      wire_io.cc: every transfer goes through the EINTR-safe helpers.
  prefdb-foreign-throw
      src/server/ and src/psql/ may only throw the prefdb exception
      family (psql/error.h + SyntaxError): the wire's closed ErrorCode
      vocabulary must stay closed.
  prefdb-float-eq
      No ==/!= on float/double in kernel/score-table code (src/exec/)
      outside the NaN-guard helpers in exec/float_eq.h, where each
      comparison's NaN contract is spelled out.
  prefdb-raw-delta-queue
      No touching a subscription's delta_queue_ outside src/ivm/: the
      queue's bound, overflow coalescing and close signaling are one
      invariant owned by ivm::SubscriptionState (TryPush / PushResync /
      Poll / Close). An engine- or server-side shortcut that pushes or
      drains the deque directly silently breaks the slow-subscriber
      resync contract.
  prefdb-raw-store-mutation
      No spelling of ColumnStore's mutating entry points (AppendRow /
      MutableColumn) outside src/relation/ and the engine ingest path
      (src/engine/engine.cc). Columns are copy-on-write and shared across
      snapshots, views and zero-copy score tables; a stray mutation path
      that skips the per-column clone corrupts every borrower. Everything
      else mutates through Relation's API (Add / Delete / Update).
  prefdb-nolint-reason
      Every NOLINT must name its check(s) and carry an inline reason:
      "NOLINT(check): reason". All suppressions are counted and listed.

Engines: an AST engine on the libclang python bindings when importable
(CI installs python3-clang), else a token-level fallback that strips
comments/strings and pattern-matches — each rule below notes where the
fallback approximates. tools/lint/fixtures/ pins both engines to the
same verdicts via tests/lint_selftest.

Suppression: "// NOLINT(prefdb-<rule>): reason" on the finding line.
Fixtures may override their effective path for path-scoped rules with a
leading "// prefdb-lint: pretend-path=<path>" comment.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

# The libclang AST engine is optional: this container/CI may or may not
# ship the bindings. The fallback engine is always available.
try:
    import clang.cindex as cindex  # type: ignore[import-not-found]

    HAVE_LIBCLANG = True
except ImportError:  # pragma: no cover - exercised only without libclang
    cindex = None  # type: ignore[assignment]
    HAVE_LIBCLANG = False


def ensure_libclang() -> bool:
    """True once libclang itself loads. Distro packages install the
    bindings with a versioned library name (libclang-18.so.1) the default
    lookup misses, so probe the common spellings before giving up."""
    if not HAVE_LIBCLANG:
        return False
    candidates = [None, "libclang-18.so.1", "libclang-18.so",
                  "libclang-17.so.1", "libclang-16.so.1",
                  "libclang-15.so.1", "libclang-14.so.1",
                  "libclang.so.1", "libclang.so"]
    for name in candidates:
        try:
            if name is not None:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(name)
            cindex.Index.create()
            return True
        except Exception:  # cindex.LibclangError, OSError on bad .so
            continue
    return False

CXX_SUFFIXES = {".cc", ".h"}

RULES = (
    "prefdb-downcast-preference",
    "prefdb-raw-mutex",
    "prefdb-raw-syscall-server",
    "prefdb-foreign-throw",
    "prefdb-float-eq",
    "prefdb-raw-delta-queue",
    "prefdb-raw-store-mutation",
    "prefdb-nolint-reason",
)

# prefdb-foreign-throw: the closed exception family. Everything thrown in
# the server/psql reply paths must classify onto the wire's ErrorCode
# vocabulary by type, not by string-matching what() at the boundary.
ALLOWED_THROW_TYPES = {
    "SyntaxError",
    "NotFoundError",
    "BadArgumentError",
    "ProtocolError",
    "ServerError",
}

# prefdb-raw-syscall-server: transfers that must go through wire_io.cc's
# EINTR-safe wrappers.
RAW_SYSCALLS = {"read", "write", "accept", "send", "recv"}

# prefdb-float-eq: the one file allowed to compare floats directly.
FLOAT_EQ_ALLOWED_FILES = {"src/exec/float_eq.h"}

PRETEND_PATH_RE = re.compile(r"prefdb-lint:\s*pretend-path=(\S+)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Nolint:
    """One parsed NOLINT comment (well-formed or not)."""

    def __init__(self, path: str, line: int, checks: str, reason: str,
                 well_formed: bool):
        self.path = path
        self.line = line
        self.checks = checks
        self.reason = reason
        self.well_formed = well_formed


class SourceFile:
    """One C++ source with comments/strings stripped for matching.

    `code` preserves byte offsets and newlines (stripped regions become
    spaces) so line numbers survive. `comments` maps line -> comment text
    for NOLINT handling.
    """

    def __init__(self, path: Path, repo_relative: str):
        self.path = path
        self.text = path.read_text(encoding="utf-8", errors="replace")
        self.code, self.comments = strip_comments_and_strings(self.text)
        self.lines = self.code.split("\n")
        self.effective_path = repo_relative
        for line_no in sorted(self.comments)[:5]:
            m = PRETEND_PATH_RE.search(self.comments[line_no])
            if m:
                self.effective_path = m.group(1)
                break
        self.nolints = parse_nolints(repo_relative, self.comments)
        # rule -> set of suppressed lines (only well-formed NOLINTs count).
        self.suppressed: dict[str, set[int]] = {}
        for nl in self.nolints:
            if not nl.well_formed:
                continue
            for check in re.split(r"[,\s]+", nl.checks):
                if check:
                    self.suppressed.setdefault(check, set()).add(nl.line)

    def is_suppressed(self, rule: str, line: int) -> bool:
        return line in self.suppressed.get(rule, set())


def strip_comments_and_strings(text: str):
    """Returns (code-with-blanks, {line: comment text})."""
    out = []
    comments: dict[int, str] = {}
    i = 0
    n = len(text)
    line = 1
    state = "code"
    comment_start_line = 1
    comment_buf: list[str] = []

    def note_comment(upto_line: int):
        if comment_buf:
            body = "".join(comment_buf)
            for off, part in enumerate(body.split("\n")):
                key = comment_start_line + off
                comments[key] = comments.get(key, "") + part
        comment_buf.clear()
        del upto_line

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw strings: R"delim( ... )delim"
                if out and out[-1] == "R" and (len(out) < 2 or not out[-2].isalnum()):
                    m = re.match(r'R"([^()\\ ]{0,16})\(', text[i - 1:])
                    if m:
                        delim = m.group(1)
                        close = text.find(")" + delim + '"', i)
                        if close == -1:
                            close = n - 1
                        span = text[i:close + len(delim) + 2]
                        out.append('"')
                        for ch in span[1:]:
                            out.append("\n" if ch == "\n" else " ")
                        line += span.count("\n")
                        i += len(span)
                        continue
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                note_comment(line)
                state = "code"
                out.append(c)
            else:
                comment_buf.append(c)
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                note_comment(line)
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(c)
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                    out[-1] = " \n"
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append("\n" if c == "\n" else " ")
        if c == "\n":
            line += 1
        i += 1
    if state in ("line_comment", "block_comment"):
        note_comment(line)
    return "".join(out), comments


# Anchored to the start of the comment: a suppression is "// NOLINT...",
# not prose that merely mentions the word.
NOLINT_RE = re.compile(r"^\s*NOLINT(NEXTLINE|BEGIN|END)?(\([^)]*\))?(.*)")


def parse_nolints(path: str, comments: dict):
    found = []
    for line_no, comment in sorted(comments.items()):
        for m in NOLINT_RE.finditer(comment):
            variant = m.group(1) or ""
            checks = (m.group(2) or "").strip("()")
            trailer = m.group(3) or ""
            reason_m = re.match(r"\s*:\s*(\S.*)$", trailer)
            reason = reason_m.group(1).strip() if reason_m else ""
            # Policy: inline NOLINT or NOLINTNEXTLINE, with an explicit
            # check list and a ": reason" trailer. BEGIN/END blocks are
            # not allowed (they hide how much is suppressed).
            well_formed = bool(checks) and bool(reason) and variant in ("", "NEXTLINE")
            target_line = line_no + 1 if variant == "NEXTLINE" else line_no
            found.append(Nolint(path, target_line, checks, reason, well_formed))
    return found


# --------------------------------------------------------------------------
# Fallback (token-level) engine
# --------------------------------------------------------------------------

CAST_RE = re.compile(
    r"\b(static_cast|reinterpret_cast)\s*<\s*(?:const\s+)?(?:\w+::)*"
    r"(\w*Preference)\s*[*&]"
)
# A C-style cast to a *Preference pointer/reference: "(const T&)expr".
# A parameter declaration "(const T& name)" has an identifier before the
# closing paren and is not matched.
C_CAST_RE = re.compile(
    r"\(\s*(?:const\s+)?(?:\w+::)*(\w+Preference)\s*[*&]+\s*\)\s*[\w(&*]"
)
MUTEX_DECL_RE = re.compile(
    r"\b(?:std::)?(?:recursive_|timed_|shared_)*mutex\s+(\w+)\s*[;{=]"
)
ENGINE_GUARD_RE = re.compile(
    r"\b(?:std::)?(?:unique_lock|lock_guard|scoped_lock)\s*<[^>]*>\s*\w+\s*[({]\s*mu_"
)
THROW_RE = re.compile(r"\bthrow\s+([A-Za-z_][\w:]*)\s*[({]")
FLOAT_DECL_RE = re.compile(
    r"\b(?:const\s+)?(?:double|float)\s*[*&]?\s+(\w+)\s*[;,=({\[):]"
    r"|\bvector\s*<\s*(?:double|float)\s*>&?\s+(\w+)"
)
FLOAT_LITERAL = r"(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)[fF]?"
COMPARE_RE = re.compile(
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?|" + FLOAT_LITERAL + r")\s*([!=]=)\s*"
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?(?:\.\w+\(\))?|" + FLOAT_LITERAL + r")"
)
FLOAT_LITERAL_RE = re.compile("^" + FLOAT_LITERAL + "$")


def in_dir(path: str, prefix: str) -> bool:
    return path.startswith(prefix)


def delta_queue_findings(src: SourceFile):
    """prefdb-raw-delta-queue, shared by both engines: the member name is
    the syntactic marker (the deque is private to ivm::SubscriptionState,
    so any spelling of it outside src/ivm/ is a friend-style bypass or a
    copy of the bookkeeping — both forbidden)."""
    findings = []
    path = src.effective_path
    if in_dir(path, "src/ivm/"):
        return findings
    for line_no, text in enumerate(src.lines, 1):
        for _ in re.finditer(r"\bdelta_queue_\b", text):
            if not src.is_suppressed("prefdb-raw-delta-queue", line_no):
                findings.append(Finding(
                    path, line_no, "prefdb-raw-delta-queue",
                    "subscription delta queue touched outside src/ivm/; "
                    "go through ivm::SubscriptionState (TryPush/PushResync/"
                    "Poll/Close) so the overflow-coalescing contract holds"))
    return findings


def store_mutation_findings(src: SourceFile):
    """prefdb-raw-store-mutation, shared by both engines: the method names
    are the syntactic markers (MutableColumn is private to ColumnStore and
    AppendRow is the store's only public mutator, so any spelling outside
    the allowed files is a friend-style bypass or a parallel copy of the
    COW bookkeeping — both break the shared-column invariant the zero-copy
    score tables borrow against)."""
    findings = []
    path = src.effective_path
    if in_dir(path, "src/relation/") or path == "src/engine/engine.cc":
        return findings
    for line_no, text in enumerate(src.lines, 1):
        for m in re.finditer(r"\b(AppendRow|MutableColumn)\b", text):
            if not src.is_suppressed("prefdb-raw-store-mutation", line_no):
                findings.append(Finding(
                    path, line_no, "prefdb-raw-store-mutation",
                    f"ColumnStore::{m.group(1)} touched outside "
                    "src/relation/ and the engine ingest path; mutate "
                    "through Relation (Add/Delete/Update) so per-column "
                    "COW protects shared snapshots and zero-copy tables"))
    return findings


def fallback_lint(src: SourceFile):
    findings = []
    path = src.effective_path

    def emit(line: int, rule: str, message: str):
        if not src.is_suppressed(rule, line):
            findings.append(Finding(path, line, rule, message))

    # --- prefdb-downcast-preference (whole tree)
    for line_no, text in enumerate(src.lines, 1):
        for m in CAST_RE.finditer(text):
            emit(line_no, "prefdb-downcast-preference",
                 f"{m.group(1)} to polymorphic type {m.group(2)}; "
                 "use dynamic_cast or virtual dispatch")
        for m in C_CAST_RE.finditer(text):
            emit(line_no, "prefdb-downcast-preference",
                 f"C-style cast to polymorphic type {m.group(1)}; "
                 "use dynamic_cast or virtual dispatch")

    # --- prefdb-raw-mutex (whole tree)
    mutex_names = set()
    for m in MUTEX_DECL_RE.finditer(src.code):
        mutex_names.add(m.group(1))
    mutex_names.add("mu_")  # the Engine mutex, wherever it is touched
    for line_no, text in enumerate(src.lines, 1):
        for m in re.finditer(r"\b(\w+)\s*(?:\.|->)\s*(lock|unlock)\s*\(", text):
            if m.group(1) in mutex_names:
                emit(line_no, "prefdb-raw-mutex",
                     f"bare .{m.group(2)}() on std::mutex '{m.group(1)}'; "
                     "hold it through an RAII guard")
        if in_dir(path, "src/engine/"):
            for m in ENGINE_GUARD_RE.finditer(text):
                # Engine::Lock()'s own implementation is the
                # try_to_lock-then-block form; everything else must call it.
                if "try_to_lock" not in text:
                    emit(line_no, "prefdb-raw-mutex",
                         "direct guard on the Engine mutex; acquire it via "
                         "Engine::Lock() so the contention counters count it")

    # --- prefdb-raw-syscall-server
    if in_dir(path, "src/server/") and Path(path).name != "wire_io.cc":
        for line_no, text in enumerate(src.lines, 1):
            for m in re.finditer(r"(^|[^\w.>:])(?:::)?(" +
                                 "|".join(sorted(RAW_SYSCALLS)) + r")\s*\(",
                                 text):
                emit(line_no, "prefdb-raw-syscall-server",
                     f"raw {m.group(2)}() outside wire_io.cc; use the "
                     "EINTR-safe helpers in server/wire_io.h")

    # --- prefdb-foreign-throw
    if in_dir(path, "src/server/") or in_dir(path, "src/psql/"):
        for line_no, text in enumerate(src.lines, 1):
            for m in THROW_RE.finditer(text):
                type_name = m.group(1).split("::")[-1]
                if type_name not in ALLOWED_THROW_TYPES:
                    emit(line_no, "prefdb-foreign-throw",
                         f"throw of non-prefdb type {m.group(1)}; the reply "
                         "path's ErrorCode vocabulary is closed (psql/error.h)")

    # --- prefdb-float-eq
    # Fallback approximation (noted): an operand counts as floating when
    # it is a float literal or its base identifier is declared
    # float/double (or vector<float/double>) in this file.
    if in_dir(path, "src/exec/") and path not in FLOAT_EQ_ALLOWED_FILES:
        float_names = set()
        for m in FLOAT_DECL_RE.finditer(src.code):
            float_names.add(m.group(1) or m.group(2))
        float_names.discard(None)

        def is_float_operand(expr: str) -> bool:
            if FLOAT_LITERAL_RE.match(expr):
                return True
            base = re.match(r"([A-Za-z_]\w*)", expr)
            return bool(base) and base.group(1) in float_names

        for line_no, text in enumerate(src.lines, 1):
            for m in COMPARE_RE.finditer(text):
                if is_float_operand(m.group(1)) or is_float_operand(m.group(3)):
                    emit(line_no, "prefdb-float-eq",
                         f"float {m.group(2)} comparison in kernel code; "
                         "route it through a NaN-guard helper "
                         "(exec/float_eq.h)")

    # --- prefdb-raw-delta-queue (whole tree outside src/ivm/)
    findings.extend(delta_queue_findings(src))

    # --- prefdb-raw-store-mutation (whole tree outside src/relation/)
    findings.extend(store_mutation_findings(src))

    return findings


# --------------------------------------------------------------------------
# AST engine (libclang)
# --------------------------------------------------------------------------


def clang_lint(src: SourceFile, extra_args):
    """AST-based checks. Falls back silently per-file on parse disasters:
    a TU that cannot parse at all is reported as a finding, never skipped.
    """
    findings = []
    path = src.effective_path

    def emit(line: int, rule: str, message: str):
        if not src.is_suppressed(rule, line):
            findings.append(Finding(path, line, rule, message))

    index = cindex.Index.create()
    args = ["-x", "c++", "-std=c++17"] + list(extra_args)
    tu = index.parse(str(src.path), args=args,
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    fatal = [d for d in tu.diagnostics if d.severity >= cindex.Diagnostic.Fatal]
    if fatal:
        # Unparseable TUs (missing includes etc.) still get the
        # token-level verdicts rather than a silent pass.
        return fallback_lint(src)

    in_server = in_dir(path, "src/server/")
    in_psql = in_dir(path, "src/psql/")
    in_exec = in_dir(path, "src/exec/") and path not in FLOAT_EQ_ALLOWED_FILES
    check_syscalls = in_server and Path(path).name != "wire_io.cc"
    main_file = str(src.path)

    def type_names(t):
        """Pointee/base record spelling for a (possibly ptr/ref) type."""
        seen = t
        for _ in range(4):
            pointee = seen.get_pointee()
            if pointee.spelling:
                seen = pointee
            else:
                break
        return seen.spelling.replace("const ", "").strip()

    def is_floating(t):
        canon = t.get_canonical().spelling.replace("const ", "").strip()
        return canon in ("float", "double", "long double")

    def walk(cursor):
        for node in cursor.get_children():
            loc = node.location
            if loc.file is None or str(loc.file) != main_file:
                # Never descend into includes; fixtures/TUs own files only.
                if node.kind in (cindex.CursorKind.NAMESPACE,
                                 cindex.CursorKind.TRANSLATION_UNIT):
                    walk(node)
                continue
            line = loc.line
            k = node.kind
            if k in (cindex.CursorKind.CXX_STATIC_CAST_EXPR,
                     cindex.CursorKind.CXX_REINTERPRET_CAST_EXPR,
                     cindex.CursorKind.CSTYLE_CAST_EXPR):
                target = type_names(node.type)
                base = target.split("::")[-1].split("<")[0].strip()
                if base.endswith("Preference"):
                    kind_name = ("C-style cast"
                                 if k == cindex.CursorKind.CSTYLE_CAST_EXPR
                                 else "static_cast")
                    emit(line, "prefdb-downcast-preference",
                         f"{kind_name} to polymorphic type {base}; "
                         "use dynamic_cast or virtual dispatch")
            elif k == cindex.CursorKind.CALL_EXPR:
                callee = node.spelling
                if callee in ("lock", "unlock"):
                    children = list(node.get_children())
                    if children:
                        recv = type_names(children[0].type)
                        if re.search(r"\bmutex\b", recv) and "unique_lock" not in recv \
                                and "lock_guard" not in recv:
                            emit(line, "prefdb-raw-mutex",
                                 f"bare .{callee}() on {recv}; hold it "
                                 "through an RAII guard")
                if check_syscalls and callee in RAW_SYSCALLS:
                    children = list(node.get_children())
                    is_member = children and children[0].kind in (
                        cindex.CursorKind.MEMBER_REF_EXPR,)
                    if not is_member:
                        emit(line, "prefdb-raw-syscall-server",
                             f"raw {callee}() outside wire_io.cc; use the "
                             "EINTR-safe helpers in server/wire_io.h")
            elif k == cindex.CursorKind.CXX_THROW_EXPR and (in_server or in_psql):
                children = list(node.get_children())
                if children:  # bare `throw;` rethrow has no operand
                    thrown = type_names(children[0].type)
                    base = thrown.split("::")[-1].split("<")[0].strip()
                    if base and base not in ALLOWED_THROW_TYPES:
                        emit(line, "prefdb-foreign-throw",
                             f"throw of non-prefdb type {thrown}; the reply "
                             "path's ErrorCode vocabulary is closed "
                             "(psql/error.h)")
            elif k == cindex.CursorKind.BINARY_OPERATOR and in_exec:
                children = list(node.get_children())
                if len(children) == 2:
                    op_tokens = {t.spelling for t in node.get_tokens()}
                    if ("==" in op_tokens or "!=" in op_tokens) and (
                            is_floating(children[0].type)
                            or is_floating(children[1].type)):
                        # The token set may include ==/!= from subexprs;
                        # the float-operand requirement keeps this tight.
                        emit(line, "prefdb-float-eq",
                             "float ==/!= comparison in kernel code; route "
                             "it through a NaN-guard helper "
                             "(exec/float_eq.h)")
            walk(node)

    walk(tu.cursor)

    # Engine-mutex discipline stays token-level in both engines: the
    # rule keys on the try_to_lock acquisition form, a syntactic marker.
    if in_dir(path, "src/engine/"):
        for line_no, text in enumerate(src.lines, 1):
            for _ in ENGINE_GUARD_RE.finditer(text):
                if "try_to_lock" not in text:
                    emit(line_no, "prefdb-raw-mutex",
                         "direct guard on the Engine mutex; acquire it via "
                         "Engine::Lock() so the contention counters count it")

    # The delta-queue and store-mutation ownership rules are likewise
    # name-marker checks — identical in both engines.
    findings.extend(delta_queue_findings(src))
    findings.extend(store_mutation_findings(src))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def collect_files(root: Path, paths):
    files = []
    for p in paths:
        candidate = (root / p) if not Path(p).is_absolute() else Path(p)
        if candidate.is_dir():
            files.extend(sorted(candidate.rglob("*.cc")))
            files.extend(sorted(candidate.rglob("*.h")))
        elif candidate.suffix in CXX_SUFFIXES:
            files.append(candidate)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories (default: src bench examples tests)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--engine", choices=["auto", "clang", "fallback"],
                    default="auto")
    ap.add_argument("--include", action="append", default=[],
                    help="extra -I directories for the AST engine")
    ap.add_argument("--list-nolint", action="store_true",
                    help="only print the NOLINT inventory")
    args = ap.parse_args()

    root = Path(args.root) if args.root else Path(__file__).resolve().parents[2]
    paths = args.paths or ["src", "bench", "examples", "tests"]

    engine = args.engine
    if engine == "auto":
        engine = "clang" if ensure_libclang() else "fallback"
    if engine == "clang" and not ensure_libclang():
        print("prefdb-lint: --engine clang but python libclang bindings "
              "are unavailable", file=sys.stderr)
        return 2

    include_args = [f"-I{root / 'src'}"]
    for inc in args.include:
        include_args.append(f"-I{inc}")

    findings = []
    nolints = []
    for path in collect_files(root, paths):
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
        src = SourceFile(path, rel)
        nolints.extend(src.nolints)
        for nl in src.nolints:
            if not nl.well_formed:
                findings.append(Finding(
                    nl.path, nl.line, "prefdb-nolint-reason",
                    "NOLINT without '(check): reason' — every suppression "
                    "names its check and justifies itself inline"))
        if args.list_nolint:
            continue
        if engine == "clang":
            findings.extend(clang_lint(src, include_args))
        else:
            findings.extend(fallback_lint(src))

    # The suppression inventory is part of every run's output: NOLINTs are
    # counted and listed so they cannot accumulate silently.
    well_formed = [nl for nl in nolints if nl.well_formed]
    if well_formed or args.list_nolint:
        print(f"prefdb-lint: {len(well_formed)} NOLINT suppression(s):")
        for nl in well_formed:
            print(f"  {nl.path}:{nl.line}: NOLINT({nl.checks}): {nl.reason}")
    if args.list_nolint:
        return 0

    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
        print(finding.render())
    if findings:
        print(f"prefdb-lint: {len(findings)} finding(s) [{engine} engine]",
              file=sys.stderr)
        return 1
    print(f"prefdb-lint: clean [{engine} engine]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
