#!/usr/bin/env python3
"""Self-test for prefdb_lint: every rule must fire where its negative
fixture says so, and nowhere else; the clean fixtures must be spotless.

Expectations are inline annotations in the fixtures —

    // LINT-EXPECT: <rule>

means "the next line must produce exactly this rule". Any finding
without a matching expectation, or expectation without a finding, fails.
Registered as the `lint_selftest` ctest entry so a rule regression (in
either the AST or the fallback engine) cannot land silently.
"""

import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
LINTER = HERE / "prefdb_lint.py"

EXPECT_RE = re.compile(r"LINT-EXPECT:\s*([\w-]+)")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([\w-]+)\]")


def expectations(fixture: Path):
    """(line, rule) pairs; the annotation names the next line."""
    expected = set()
    for line_no, text in enumerate(fixture.read_text().splitlines(), 1):
        m = EXPECT_RE.search(text)
        if m:
            expected.add((line_no + 1, m.group(1)))
    return expected


def run_linter(fixture: Path, engine: str):
    proc = subprocess.run(
        [sys.executable, str(LINTER), "--engine", engine, "--root", str(HERE),
         str(fixture)],
        capture_output=True, text=True)
    found = set()
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            found.add((int(m.group(2)), m.group(3)))
    return proc.returncode, found


def main() -> int:
    engines = ["fallback"]
    # Probe through the linter's own loader (it handles the distro's
    # versioned libclang names), not a bare import.
    probe = subprocess.run(
        [sys.executable, "-c",
         "import sys; sys.path.insert(0, sys.argv[1]); "
         "import prefdb_lint; sys.exit(0 if prefdb_lint.ensure_libclang() else 1)",
         str(HERE)],
        capture_output=True)
    if probe.returncode == 0:
        engines.append("clang")

    failures = []
    fixtures = sorted(FIXTURES.glob("*.cc"))
    if not fixtures:
        print("lint_selftest: no fixtures found", file=sys.stderr)
        return 2
    rules_covered = set()
    for fixture in fixtures:
        expected = expectations(fixture)
        rules_covered.update(rule for _, rule in expected)
        for engine in engines:
            code, found = run_linter(fixture, engine)
            label = f"{fixture.name} [{engine}]"
            if expected and code != 1:
                failures.append(f"{label}: expected exit 1, got {code}")
            if not expected and code != 0:
                failures.append(f"{label}: clean fixture, expected exit 0, "
                                f"got {code}: {sorted(found)}")
            for miss in sorted(expected - found):
                failures.append(f"{label}: line {miss[0]} should flag "
                                f"{miss[1]} but did not")
            for extra in sorted(found - expected):
                failures.append(f"{label}: unexpected finding {extra[1]} "
                                f"at line {extra[0]}")

    # Every shipped rule needs a negative fixture: a rule nobody can
    # regress-test is a rule that can rot.
    lint_source = LINTER.read_text()
    all_rules = set(re.findall(r'"(prefdb-[\w-]+)"', lint_source))
    for rule in sorted(all_rules - rules_covered):
        failures.append(f"rule {rule} has no LINT-EXPECT fixture coverage")

    if failures:
        print("lint_selftest FAILED:")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"lint_selftest: {len(fixtures)} fixtures x {engines} ok; "
          f"{len(rules_covered)} rules covered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
