// Negative fixture: prefdb-downcast-preference must fire on every cast
// below. This is the PR 2 segfault class: a kind-tag static_cast assumed
// kind() uniquely identified the concrete class, and CondLayeredPreference
// (kind kLayered, different layout) walked off the object.

struct BasePreference {
  virtual ~BasePreference() = default;
  virtual int kind() const = 0;
};

struct LayeredPreference : BasePreference {
  int kind() const override { return 1; }
  int layers = 0;
};

int ReadLayers(const BasePreference* p) {
  // LINT-EXPECT: prefdb-downcast-preference
  const auto* layered = static_cast<const LayeredPreference*>(p);
  return layered->layers;
}

int ReadLayersRef(const BasePreference& p) {
  // LINT-EXPECT: prefdb-downcast-preference
  const auto& layered = static_cast<const LayeredPreference&>(p);
  return layered.layers;
}

int ReadLayersCCast(const BasePreference* p) {
  // LINT-EXPECT: prefdb-downcast-preference
  const auto* layered = (const LayeredPreference*)p;
  return layered->layers;
}
