// prefdb-lint: pretend-path=src/exec/fixture.cc
// Clean fixture for kernel code: float comparisons routed through the
// NaN-guard helpers, integer ==/!= untouched, ordering comparisons on
// doubles untouched (only ==/!= are the NaN trap).

#include <cmath>
#include <cstddef>
#include <vector>

// Stand-ins for exec/float_eq.h's helpers.
inline bool ScoreEqNanFree(double a, double b) noexcept { return !(a < b) && !(b < a); }
inline bool ScoreEqOrBothNan(double a, double b) noexcept {
  return ScoreEqNanFree(a, b) || (std::isnan(a) && std::isnan(b));
}

std::size_t CountTies(const std::vector<double>& scores, double key) {
  std::size_t ties = 0;
  for (double s : scores) {
    if (ScoreEqOrBothNan(s, key)) ++ties;
  }
  return ties;
}

bool Ordered(double a, double b) { return a < b; }  // ordering: allowed

std::size_t CountZeros(const std::vector<int>& ids) {
  std::size_t zeros = 0;
  for (int id : ids) {
    if (id == 0) ++zeros;  // integer equality: allowed
  }
  return zeros;
}
