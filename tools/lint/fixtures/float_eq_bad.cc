// prefdb-lint: pretend-path=src/exec/fixture.cc
// Negative fixture: prefdb-float-eq must fire on direct float/double
// ==/!= in kernel code. NaN != NaN silently splits equality classes
// (the SFS non-finite-key bug family); every comparison must go through
// a NaN-guard helper that states its contract.

#include <cstddef>
#include <vector>

bool SameScore(double a, double b) {
  // LINT-EXPECT: prefdb-float-eq
  return a == b;
}

std::size_t CountTies(const std::vector<double>& scores, double key) {
  std::size_t ties = 0;
  for (double s : scores) {
    // LINT-EXPECT: prefdb-float-eq
    if (s != key) continue;
    ++ties;
  }
  return ties;
}

bool IsUnitScore(double score) {
  // LINT-EXPECT: prefdb-float-eq
  return score == 1.0;
}
