// prefdb-lint: pretend-path=src/psql/fixture.cc
// Negative fixture: prefdb-foreign-throw must fire on throws of types
// outside the prefdb exception family. The wire's ErrorCode vocabulary
// is closed; a stray std::logic_error classifies as kInternal and the
// client loses the real error class.

#include <stdexcept>
#include <string>

void RejectTable(const std::string& name) {
  // LINT-EXPECT: prefdb-foreign-throw
  throw std::out_of_range("unknown table '" + name + "'");
}

void RejectArgument(const std::string& what) {
  // LINT-EXPECT: prefdb-foreign-throw
  throw std::invalid_argument(what);
}

void RejectState() {
  // LINT-EXPECT: prefdb-foreign-throw
  throw std::runtime_error("bad state");
}
