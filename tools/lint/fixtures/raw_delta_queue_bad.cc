// prefdb-lint: pretend-path=src/engine/engine.cc
// Negative fixture for prefdb-raw-delta-queue: engine/server code must
// not reach into ivm::SubscriptionState's delta deque — every push and
// drain goes through the API so the bounded-overflow coalescing holds.

#include <cstddef>
#include <deque>

struct ViewDelta {
  unsigned version = 0;
};

struct SubscriptionState {
  // Even declaring a parallel copy of the queue is a violation.
  // LINT-EXPECT: prefdb-raw-delta-queue
  std::deque<ViewDelta> delta_queue_;
};

void BypassDeliver(SubscriptionState* state, const ViewDelta& delta) {
  // LINT-EXPECT: prefdb-raw-delta-queue
  state->delta_queue_.push_back(delta);
}

std::size_t BypassDrain(SubscriptionState* state) {
  // LINT-EXPECT: prefdb-raw-delta-queue
  std::size_t n = state->delta_queue_.size();
  // LINT-EXPECT: prefdb-raw-delta-queue
  state->delta_queue_.clear();
  return n;
}
