// prefdb-lint: pretend-path=src/server/wire_io.cc
// Clean fixture: everything here is the allowed shape of the patterns
// the rules ban — raw syscalls inside wire_io.cc itself, throws from the
// prefdb exception family, dynamic_cast on polymorphic preferences, and
// a NOLINT that names its check and carries a reason.

#include <mutex>
#include <stdexcept>
#include <sys/socket.h>
#include <unistd.h>

struct ServerError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct BasePreference {
  virtual ~BasePreference() = default;
};

struct LayeredPreference : BasePreference {
  int layers = 0;
};

long ReadSome(int fd, char* buf, unsigned long len) {
  long n = read(fd, buf, len);  // allowed: this IS wire_io.cc
  if (n < 0) throw ServerError("read failed");
  return n;
}

int AcceptOne(int listen_fd) {
  return accept(listen_fd, nullptr, nullptr);  // allowed here
}

int ReadLayers(const BasePreference* p) {
  const auto* layered = dynamic_cast<const LayeredPreference*>(p);
  return layered != nullptr ? layered->layers : 0;
}

int GuardedCount(std::mutex& mu, int& counter) {
  std::lock_guard<std::mutex> lock(mu);  // RAII guard: allowed
  return counter;
}

int Truncate(long v) {
  // NOLINT(bugprone-narrowing-conversions): callers clamp v to int range
  return static_cast<int>(v);
}
