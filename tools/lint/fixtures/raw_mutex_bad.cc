// prefdb-lint: pretend-path=src/engine/fixture.cc
// Negative fixture: prefdb-raw-mutex must fire on the bare lock/unlock
// pair and on a direct guard over the Engine mutex. An exception between
// .lock() and .unlock() leaks the mutex, and guards that bypass
// Engine::Lock() leave the contention counters lying.

#include <mutex>

class Counter {
 public:
  void Add(int n) {
    // LINT-EXPECT: prefdb-raw-mutex
    mu_.lock();
    total_ += n;
    // LINT-EXPECT: prefdb-raw-mutex
    mu_.unlock();
  }

  int Snapshot() {
    // LINT-EXPECT: prefdb-raw-mutex
    std::unique_lock<std::mutex> lock(mu_);
    return total_;
  }

 private:
  std::mutex mu_;
  int total_ = 0;
};
