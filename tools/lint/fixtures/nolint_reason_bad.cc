// Negative fixture: prefdb-nolint-reason must fire on suppressions that
// do not name their check and justify themselves inline. A naked NOLINT
// is an unbounded, unexplained hole in the gate.

int Widen(long v) {
  // LINT-EXPECT: prefdb-nolint-reason
  return static_cast<int>(v);  // NOLINT
}

int WidenNamedNoReason(long v) {
  // LINT-EXPECT: prefdb-nolint-reason
  return static_cast<int>(v);  // NOLINT(bugprone-narrowing-conversions)
}

int WidenReasonNoName(long v) {
  // LINT-EXPECT: prefdb-nolint-reason
  return static_cast<int>(v);  // NOLINT: the callers clamp v
}
