// prefdb-lint: pretend-path=src/engine/fixture.cc
// Clean fixture for the Engine-mutex discipline: the try_to_lock-then-
// block acquisition (the body of Engine::Lock()) is the one sanctioned
// direct use of mu_; everything else calls Lock() and holds the returned
// guard.

#include <atomic>
#include <mutex>

class EngineLike {
 public:
  std::unique_lock<std::mutex> Lock() const {
    // The sanctioned form: try_to_lock first so contention is observable.
    std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      contentions_.fetch_add(1, std::memory_order_relaxed);
      lock.lock();  // unique_lock, not a bare mutex: RAII still owns it
    }
    return lock;
  }

  int Snapshot() const {
    auto lock = Lock();
    return value_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::atomic<int> contentions_{0};
  int value_ = 0;
};
