// prefdb-lint: pretend-path=src/server/fixture.cc
// Negative fixture: prefdb-raw-syscall-server must fire on each raw
// transfer syscall. Outside wire_io.cc a bare read/write/accept/send/recv
// reintroduces the EINTR/short-transfer hazards the helpers exist to
// contain.

#include <sys/socket.h>
#include <unistd.h>

long ReadSome(int fd, char* buf, unsigned long len) {
  // LINT-EXPECT: prefdb-raw-syscall-server
  return read(fd, buf, len);
}

long SendSome(int fd, const char* buf, unsigned long len) {
  // LINT-EXPECT: prefdb-raw-syscall-server
  return send(fd, buf, len, 0);
}

int AcceptOne(int listen_fd) {
  // LINT-EXPECT: prefdb-raw-syscall-server
  return accept(listen_fd, nullptr, nullptr);
}
