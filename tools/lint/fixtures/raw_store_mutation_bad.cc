// prefdb-lint: pretend-path=src/exec/ingest_shortcut.cc
// Negative fixture for prefdb-raw-store-mutation: execution-layer code
// must not reach into ColumnStore's mutating entry points — columns are
// copy-on-write and shared with snapshots, index views and zero-copy
// score tables, so every mutation goes through Relation's API where the
// per-column clone happens.

#include <cstddef>
#include <vector>

struct Tuple;

struct ColumnStore {
  // Even re-declaring the mutators for a shim is a violation.
  // LINT-EXPECT: prefdb-raw-store-mutation
  void AppendRow(const Tuple& t);
  // LINT-EXPECT: prefdb-raw-store-mutation
  void* MutableColumn(std::size_t c);
};

void BypassIngest(ColumnStore* store, const std::vector<Tuple>& batch) {
  for (const Tuple& t : batch) {
    // LINT-EXPECT: prefdb-raw-store-mutation
    store->AppendRow(t);
  }
}

void* BypassCow(ColumnStore* store, std::size_t c) {
  // LINT-EXPECT: prefdb-raw-store-mutation
  return store->MutableColumn(c);
}
